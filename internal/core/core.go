// Package core provides Aftermath's in-memory trace representation:
// per-CPU event arrays sorted by timestamp, task/type/region/counter
// tables, and binary-search interval queries.
//
// The representation follows Section VI-B-c of the paper: each CPU
// keeps one array per event family sorted by timestamp, so the slice
// of events relevant to any time interval is found with a binary
// search. Information not explicitly present in the trace (task
// execution placement, the location of memory accesses) is derived
// once at load time or on demand.
package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/openstream/aftermath/internal/store"
	"github.com/openstream/aftermath/internal/trace"
)

// Interval is a half-open time interval [Start, End).
type Interval struct {
	Start trace.Time
	End   trace.Time
}

// Duration returns End - Start.
func (iv Interval) Duration() trace.Time { return iv.End - iv.Start }

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t trace.Time) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether the interval overlaps [s, e).
func (iv Interval) Overlaps(s, e trace.Time) bool { return iv.Start < e && s < iv.End }

// TaskInfo describes a task instance with its execution placement,
// derived from task-execution state events at load time.
type TaskInfo struct {
	ID         trace.TaskID
	Type       trace.TypeID
	Created    trace.Time
	CreatorCPU int32
	// ExecCPU is the CPU that executed the task, or -1 if the trace
	// contains no execution interval for it.
	ExecCPU   int32
	ExecStart trace.Time
	ExecEnd   trace.Time
}

// Duration returns the task's execution duration, or 0 if it never
// executed.
func (t *TaskInfo) Duration() trace.Time {
	if t.ExecCPU < 0 {
		return 0
	}
	return t.ExecEnd - t.ExecStart
}

// CPUData holds one CPU's event arrays, each sorted by timestamp.
type CPUData struct {
	States   []trace.StateEvent
	Discrete []trace.DiscreteEvent
	Comm     []trace.CommEvent
}

// Counter holds one performance counter's description and per-CPU
// sample arrays sorted by time. For live traces with spilling enabled,
// PerCPU holds only the RAM tail; the spilled columns live in frozen
// and the accessors (Samples, SamplesIn, ValueAt, NumSamples) stitch
// the two transparently.
type Counter struct {
	Desc   trace.CounterDesc
	PerCPU [][]trace.CounterSample

	// frozen[cpu][seg] holds the spilled sample columns (spill.go);
	// nil for traces that never spilled.
	frozen [][][]trace.CounterSample
}

// Trace is a fully loaded, indexed trace.
type Trace struct {
	// Topology is the machine topology; if the trace had no topology
	// record, a flat single-node topology is synthesized.
	Topology trace.Topology
	// CPUs holds per-CPU event arrays, indexed by CPU id.
	CPUs []CPUData
	// Types lists the task types, ordered by ID.
	Types []trace.TaskType
	// Tasks lists all tasks ordered by ID.
	Tasks []TaskInfo
	// Counters lists the counters present in the trace.
	Counters []*Counter
	// Regions lists memory regions sorted by address.
	Regions []trace.MemRegion
	// Span is the traced time interval.
	Span Interval

	typeByID      map[trace.TypeID]int
	taskByID      map[trace.TaskID]int
	counterByID   map[trace.CounterID]int
	counterByName map[string]int

	// lazyTaskIDs defers building taskByID until the first TaskByID
	// call. OpenStore sets it so opening a snapshot stays O(touched
	// pages) instead of O(tasks); hand-built and loaded traces keep
	// their eager map (a nil map here means "no tasks", not "build").
	lazyTaskIDs bool
	taskIDOnce  sync.Once

	// frozen holds the spilled event columns of a live trace with
	// retention enabled (spill.go); nil otherwise. The event accessors
	// stitch it with the RAM-tail arrays in CPUs.
	frozen *frozenTrace

	// backing is the mapped store file of an OpenStore trace (the
	// event arrays above are views into it); Close releases it.
	backing *store.Mapped

	cindexOnce sync.Once
	cindex     *CounterIndex

	domOnce sync.Once
	dom     *DomIndex

	// taskAgg and commTotals are the incrementally maintained
	// trace-global aggregate baselines (taskagg.go), seeded by live
	// snapshots; nil for batch loads, which derive them by scanning.
	taskAgg    *TaskAgg
	commTotals *CommTotals
}

// NumCPUs returns the number of CPUs.
func (tr *Trace) NumCPUs() int { return len(tr.CPUs) }

// NumNodes returns the number of NUMA nodes.
func (tr *Trace) NumNodes() int { return int(tr.Topology.NumNodes) }

// NodeOfCPU returns the NUMA node of a CPU (0 if out of range).
func (tr *Trace) NodeOfCPU(cpu int32) int32 {
	if int(cpu) < len(tr.Topology.NodeOfCPU) {
		return tr.Topology.NodeOfCPU[cpu]
	}
	return 0
}

// Distance returns the hop distance between two NUMA nodes.
func (tr *Trace) Distance(a, b int32) int32 {
	n := tr.Topology.NumNodes
	if a < 0 || b < 0 || a >= n || b >= n {
		return 0
	}
	return tr.Topology.Distance[a*n+b]
}

// TypeByID returns the task type with the given ID.
func (tr *Trace) TypeByID(id trace.TypeID) (trace.TaskType, bool) {
	i, ok := tr.typeByID[id]
	if !ok {
		return trace.TaskType{}, false
	}
	return tr.Types[i], true
}

// TypeName returns the name of a task type, or a placeholder derived
// from the ID when the trace lacks the type record or a name.
func (tr *Trace) TypeName(id trace.TypeID) string {
	if t, ok := tr.TypeByID(id); ok && t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("type_%d", id)
}

// TaskByID returns the task with the given ID.
func (tr *Trace) TaskByID(id trace.TaskID) (*TaskInfo, bool) {
	if tr.lazyTaskIDs {
		tr.taskIDOnce.Do(func() {
			m := make(map[trace.TaskID]int, len(tr.Tasks))
			for i := range tr.Tasks {
				m[tr.Tasks[i].ID] = i
			}
			tr.taskByID = m
		})
	}
	i, ok := tr.taskByID[id]
	if !ok {
		return nil, false
	}
	return &tr.Tasks[i], true
}

// CounterByID returns the counter with the given ID.
func (tr *Trace) CounterByID(id trace.CounterID) (*Counter, bool) {
	i, ok := tr.counterByID[id]
	if !ok {
		return nil, false
	}
	return tr.Counters[i], true
}

// CounterByName returns the first counter with the given name. For
// loaded traces this is a map lookup on the name index built at load
// time; hand-built traces without the index fall back to a scan.
func (tr *Trace) CounterByName(name string) (*Counter, bool) {
	if tr.counterByName != nil {
		i, ok := tr.counterByName[name]
		if !ok {
			return nil, false
		}
		return tr.Counters[i], true
	}
	for _, c := range tr.Counters {
		if c.Desc.Name == name {
			return c, true
		}
	}
	return nil, false
}

// RegionAt returns the memory region containing addr. This is the
// lookup the paper describes in Section VI-A: region placement is
// stored once, and accesses are localized by address.
func (tr *Trace) RegionAt(addr uint64) (trace.MemRegion, bool) {
	i := sort.Search(len(tr.Regions), func(i int) bool {
		return tr.Regions[i].Addr > addr
	})
	if i == 0 {
		return trace.MemRegion{}, false
	}
	r := tr.Regions[i-1]
	if r.Contains(addr) {
		return r, true
	}
	return trace.MemRegion{}, false
}

// NodeOfAddr returns the NUMA node holding addr, or -1 if unknown.
func (tr *Trace) NodeOfAddr(addr uint64) int32 {
	if r, ok := tr.RegionAt(addr); ok {
		return r.Node
	}
	return -1
}

// StatesIn returns the state events on cpu overlapping [t0, t1), found
// by binary search (state intervals per CPU are disjoint and sorted).
// For spilled live traces, the result stitches the on-disk columns and
// the RAM tail; it is a view into trace storage unless the window
// crosses a spill boundary, in which case it is a fresh copy.
func (tr *Trace) StatesIn(cpu int32, t0, t1 trace.Time) []trace.StateEvent {
	if int(cpu) >= len(tr.CPUs) {
		return nil
	}
	states := tr.CPUs[cpu].States
	if fc := tr.frozenFor(cpu); fc != nil && len(fc.states) > 0 {
		return stitchWin(fc.states, states, stateWin(t0, t1))
	}
	lo := sort.Search(len(states), func(i int) bool { return states[i].End > t0 })
	hi := sort.Search(len(states), func(i int) bool { return states[i].Start >= t1 })
	if lo >= hi {
		return nil
	}
	return states[lo:hi]
}

// DiscreteIn returns the discrete events on cpu with time in [t0, t1),
// stitching spilled columns like StatesIn.
func (tr *Trace) DiscreteIn(cpu int32, t0, t1 trace.Time) []trace.DiscreteEvent {
	if int(cpu) >= len(tr.CPUs) {
		return nil
	}
	evs := tr.CPUs[cpu].Discrete
	if fc := tr.frozenFor(cpu); fc != nil && len(fc.discrete) > 0 {
		return stitchWin(fc.discrete, evs, discreteWin(t0, t1))
	}
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= t0 })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= t1 })
	return evs[lo:hi]
}

// CommIn returns the communication events on cpu with time in [t0, t1),
// stitching spilled columns like StatesIn.
func (tr *Trace) CommIn(cpu int32, t0, t1 trace.Time) []trace.CommEvent {
	if int(cpu) >= len(tr.CPUs) {
		return nil
	}
	evs := tr.CPUs[cpu].Comm
	if fc := tr.frozenFor(cpu); fc != nil && len(fc.comm) > 0 {
		return stitchWin(fc.comm, evs, commWin(t0, t1))
	}
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= t0 })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= t1 })
	return evs[lo:hi]
}

// noComm is the shared result for tasks without communication events,
// so callers iterating many tasks do not allocate per call.
var noComm = []trace.CommEvent{}

// TaskComm returns the communication events belonging to a task's
// execution (reads recorded at start, writes at completion). The
// result aliases trace storage where possible and must not be
// modified.
func (tr *Trace) TaskComm(t *TaskInfo) []trace.CommEvent {
	if t.ExecCPU < 0 {
		return nil
	}
	window := tr.CommIn(t.ExecCPU, t.ExecStart, t.ExecEnd+1)
	n := 0
	for i := range window {
		if window[i].Task == t.ID {
			n++
		}
	}
	switch n {
	case 0:
		return noComm
	case len(window):
		// The whole window belongs to the task (the common case):
		// return the trace's own slice without copying.
		return window
	}
	out := make([]trace.CommEvent, 0, n)
	for i := range window {
		if window[i].Task == t.ID {
			out = append(out, window[i])
		}
	}
	return out
}

// Samples returns the sample array of a counter on a CPU. For spilled
// live counters the spilled columns and the RAM tail are concatenated
// into a fresh slice; windowed callers should prefer SamplesIn, which
// copies only across spill boundaries.
func (c *Counter) Samples(cpu int32) []trace.CounterSample {
	var tail []trace.CounterSample
	if int(cpu) < len(c.PerCPU) {
		tail = c.PerCPU[cpu]
	}
	if int(cpu) < len(c.frozen) && len(c.frozen[cpu]) > 0 {
		n := len(tail)
		for _, s := range c.frozen[cpu] {
			n += len(s)
		}
		if n == len(tail) {
			return tail
		}
		out := make([]trace.CounterSample, 0, n)
		for _, s := range c.frozen[cpu] {
			out = append(out, s...)
		}
		return append(out, tail...)
	}
	return tail
}

// SamplesIn returns the samples of a counter on cpu with time in
// [t0, t1), stitching spilled columns with the RAM tail.
func (c *Counter) SamplesIn(cpu int32, t0, t1 trace.Time) []trace.CounterSample {
	var tail []trace.CounterSample
	if int(cpu) < len(c.PerCPU) {
		tail = c.PerCPU[cpu]
	}
	if int(cpu) < len(c.frozen) && len(c.frozen[cpu]) > 0 {
		return stitchWin(c.frozen[cpu], tail, sampleWin(t0, t1))
	}
	lo := sort.Search(len(tail), func(i int) bool { return tail[i].Time >= t0 })
	hi := sort.Search(len(tail), func(i int) bool { return tail[i].Time >= t1 })
	return tail[lo:hi]
}

// ValueAt returns the counter's value on cpu at time t: the value of
// the latest sample at or before t. ok is false if no sample precedes
// t. Spilled columns are searched newest-first after the RAM tail.
func (c *Counter) ValueAt(cpu int32, t trace.Time) (int64, bool) {
	var tail []trace.CounterSample
	if int(cpu) < len(c.PerCPU) {
		tail = c.PerCPU[cpu]
	}
	i := sort.Search(len(tail), func(i int) bool { return tail[i].Time > t })
	if i > 0 {
		return tail[i-1].Value, true
	}
	if int(cpu) < len(c.frozen) {
		row := c.frozen[cpu]
		for k := len(row) - 1; k >= 0; k-- {
			s := row[k]
			j := sort.Search(len(s), func(i int) bool { return s[i].Time > t })
			if j > 0 {
				return s[j-1].Value, true
			}
		}
	}
	return 0, false
}

// counterFor returns the counter registered for id, creating and
// registering it on first reference (samples may precede the counter
// description in the stream).
func (tr *Trace) counterFor(id trace.CounterID) *Counter {
	if i, ok := tr.counterByID[id]; ok {
		return tr.Counters[i]
	}
	c := &Counter{Desc: trace.CounterDesc{ID: id, Monotonic: true}}
	tr.counterByID[id] = len(tr.Counters)
	tr.Counters = append(tr.Counters, c)
	return c
}
