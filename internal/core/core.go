// Package core provides Aftermath's in-memory trace representation:
// per-CPU event arrays sorted by timestamp, task/type/region/counter
// tables, and binary-search interval queries.
//
// The representation follows Section VI-B-c of the paper: each CPU
// keeps one array per event family sorted by timestamp, so the slice
// of events relevant to any time interval is found with a binary
// search. Information not explicitly present in the trace (task
// execution placement, the location of memory accesses) is derived
// once at load time or on demand.
package core

import (
	"fmt"
	"io"
	"sort"

	"github.com/openstream/aftermath/internal/trace"
)

// Interval is a half-open time interval [Start, End).
type Interval struct {
	Start trace.Time
	End   trace.Time
}

// Duration returns End - Start.
func (iv Interval) Duration() trace.Time { return iv.End - iv.Start }

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t trace.Time) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether the interval overlaps [s, e).
func (iv Interval) Overlaps(s, e trace.Time) bool { return iv.Start < e && s < iv.End }

// TaskInfo describes a task instance with its execution placement,
// derived from task-execution state events at load time.
type TaskInfo struct {
	ID         trace.TaskID
	Type       trace.TypeID
	Created    trace.Time
	CreatorCPU int32
	// ExecCPU is the CPU that executed the task, or -1 if the trace
	// contains no execution interval for it.
	ExecCPU   int32
	ExecStart trace.Time
	ExecEnd   trace.Time
}

// Duration returns the task's execution duration, or 0 if it never
// executed.
func (t *TaskInfo) Duration() trace.Time {
	if t.ExecCPU < 0 {
		return 0
	}
	return t.ExecEnd - t.ExecStart
}

// CPUData holds one CPU's event arrays, each sorted by timestamp.
type CPUData struct {
	States   []trace.StateEvent
	Discrete []trace.DiscreteEvent
	Comm     []trace.CommEvent
}

// Counter holds one performance counter's description and per-CPU
// sample arrays sorted by time.
type Counter struct {
	Desc   trace.CounterDesc
	PerCPU [][]trace.CounterSample
}

// Trace is a fully loaded, indexed trace.
type Trace struct {
	// Topology is the machine topology; if the trace had no topology
	// record, a flat single-node topology is synthesized.
	Topology trace.Topology
	// CPUs holds per-CPU event arrays, indexed by CPU id.
	CPUs []CPUData
	// Types lists the task types, ordered by ID.
	Types []trace.TaskType
	// Tasks lists all tasks ordered by ID.
	Tasks []TaskInfo
	// Counters lists the counters present in the trace.
	Counters []*Counter
	// Regions lists memory regions sorted by address.
	Regions []trace.MemRegion
	// Span is the traced time interval.
	Span Interval

	typeByID    map[trace.TypeID]int
	taskByID    map[trace.TaskID]int
	counterByID map[trace.CounterID]int
}

// NumCPUs returns the number of CPUs.
func (tr *Trace) NumCPUs() int { return len(tr.CPUs) }

// NumNodes returns the number of NUMA nodes.
func (tr *Trace) NumNodes() int { return int(tr.Topology.NumNodes) }

// NodeOfCPU returns the NUMA node of a CPU (0 if out of range).
func (tr *Trace) NodeOfCPU(cpu int32) int32 {
	if int(cpu) < len(tr.Topology.NodeOfCPU) {
		return tr.Topology.NodeOfCPU[cpu]
	}
	return 0
}

// Distance returns the hop distance between two NUMA nodes.
func (tr *Trace) Distance(a, b int32) int32 {
	n := tr.Topology.NumNodes
	if a < 0 || b < 0 || a >= n || b >= n {
		return 0
	}
	return tr.Topology.Distance[a*n+b]
}

// TypeByID returns the task type with the given ID.
func (tr *Trace) TypeByID(id trace.TypeID) (trace.TaskType, bool) {
	i, ok := tr.typeByID[id]
	if !ok {
		return trace.TaskType{}, false
	}
	return tr.Types[i], true
}

// TypeName returns the name of a task type, or a placeholder derived
// from the ID when the trace lacks the type record or a name.
func (tr *Trace) TypeName(id trace.TypeID) string {
	if t, ok := tr.TypeByID(id); ok && t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("type_%d", id)
}

// TaskByID returns the task with the given ID.
func (tr *Trace) TaskByID(id trace.TaskID) (*TaskInfo, bool) {
	i, ok := tr.taskByID[id]
	if !ok {
		return nil, false
	}
	return &tr.Tasks[i], true
}

// CounterByID returns the counter with the given ID.
func (tr *Trace) CounterByID(id trace.CounterID) (*Counter, bool) {
	i, ok := tr.counterByID[id]
	if !ok {
		return nil, false
	}
	return tr.Counters[i], true
}

// CounterByName returns the first counter with the given name.
func (tr *Trace) CounterByName(name string) (*Counter, bool) {
	for _, c := range tr.Counters {
		if c.Desc.Name == name {
			return c, true
		}
	}
	return nil, false
}

// RegionAt returns the memory region containing addr. This is the
// lookup the paper describes in Section VI-A: region placement is
// stored once, and accesses are localized by address.
func (tr *Trace) RegionAt(addr uint64) (trace.MemRegion, bool) {
	i := sort.Search(len(tr.Regions), func(i int) bool {
		return tr.Regions[i].Addr > addr
	})
	if i == 0 {
		return trace.MemRegion{}, false
	}
	r := tr.Regions[i-1]
	if r.Contains(addr) {
		return r, true
	}
	return trace.MemRegion{}, false
}

// NodeOfAddr returns the NUMA node holding addr, or -1 if unknown.
func (tr *Trace) NodeOfAddr(addr uint64) int32 {
	if r, ok := tr.RegionAt(addr); ok {
		return r.Node
	}
	return -1
}

// StatesIn returns the state events on cpu overlapping [t0, t1), found
// by binary search (state intervals per CPU are disjoint and sorted).
func (tr *Trace) StatesIn(cpu int32, t0, t1 trace.Time) []trace.StateEvent {
	if int(cpu) >= len(tr.CPUs) {
		return nil
	}
	states := tr.CPUs[cpu].States
	lo := sort.Search(len(states), func(i int) bool { return states[i].End > t0 })
	hi := sort.Search(len(states), func(i int) bool { return states[i].Start >= t1 })
	if lo >= hi {
		return nil
	}
	return states[lo:hi]
}

// DiscreteIn returns the discrete events on cpu with time in [t0, t1).
func (tr *Trace) DiscreteIn(cpu int32, t0, t1 trace.Time) []trace.DiscreteEvent {
	if int(cpu) >= len(tr.CPUs) {
		return nil
	}
	evs := tr.CPUs[cpu].Discrete
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= t0 })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= t1 })
	return evs[lo:hi]
}

// CommIn returns the communication events on cpu with time in [t0, t1).
func (tr *Trace) CommIn(cpu int32, t0, t1 trace.Time) []trace.CommEvent {
	if int(cpu) >= len(tr.CPUs) {
		return nil
	}
	evs := tr.CPUs[cpu].Comm
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= t0 })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= t1 })
	return evs[lo:hi]
}

// TaskComm returns the communication events belonging to a task's
// execution (reads recorded at start, writes at completion).
func (tr *Trace) TaskComm(t *TaskInfo) []trace.CommEvent {
	if t.ExecCPU < 0 {
		return nil
	}
	window := tr.CommIn(t.ExecCPU, t.ExecStart, t.ExecEnd+1)
	var out []trace.CommEvent
	for _, ev := range window {
		if ev.Task == t.ID {
			out = append(out, ev)
		}
	}
	return out
}

// Samples returns the sample array of a counter on a CPU.
func (c *Counter) Samples(cpu int32) []trace.CounterSample {
	if int(cpu) >= len(c.PerCPU) {
		return nil
	}
	return c.PerCPU[cpu]
}

// SamplesIn returns the samples of a counter on cpu with time in
// [t0, t1).
func (c *Counter) SamplesIn(cpu int32, t0, t1 trace.Time) []trace.CounterSample {
	s := c.Samples(cpu)
	lo := sort.Search(len(s), func(i int) bool { return s[i].Time >= t0 })
	hi := sort.Search(len(s), func(i int) bool { return s[i].Time >= t1 })
	return s[lo:hi]
}

// ValueAt returns the counter's value on cpu at time t: the value of
// the latest sample at or before t. ok is false if no sample precedes t.
func (c *Counter) ValueAt(cpu int32, t trace.Time) (int64, bool) {
	s := c.Samples(cpu)
	i := sort.Search(len(s), func(i int) bool { return s[i].Time > t })
	if i == 0 {
		return 0, false
	}
	return s[i-1].Value, true
}

// Load reads and indexes a trace file.
func Load(path string) (*Trace, error) {
	rc, err := trace.Open(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return FromReader(rc)
}

// FromReader reads and indexes a trace from a stream.
func FromReader(r io.Reader) (*Trace, error) {
	tr := &Trace{
		typeByID:    make(map[trace.TypeID]int),
		taskByID:    make(map[trace.TaskID]int),
		counterByID: make(map[trace.CounterID]int),
	}
	var hasTopo bool
	maxCPU := int32(-1)
	cpu := func(id int32) *CPUData {
		for int(id) >= len(tr.CPUs) {
			tr.CPUs = append(tr.CPUs, CPUData{})
		}
		if id > maxCPU {
			maxCPU = id
		}
		return &tr.CPUs[id]
	}
	counter := func(id trace.CounterID) *Counter {
		if i, ok := tr.counterByID[id]; ok {
			return tr.Counters[i]
		}
		c := &Counter{Desc: trace.CounterDesc{ID: id, Monotonic: true}}
		tr.counterByID[id] = len(tr.Counters)
		tr.Counters = append(tr.Counters, c)
		return c
	}

	err := trace.Read(r, trace.Handler{
		Topology: func(t trace.Topology) error {
			tr.Topology = t
			hasTopo = true
			return nil
		},
		TaskType: func(t trace.TaskType) error {
			if _, ok := tr.typeByID[t.ID]; !ok {
				tr.typeByID[t.ID] = len(tr.Types)
				tr.Types = append(tr.Types, t)
			}
			return nil
		},
		Task: func(t trace.Task) error {
			if i, ok := tr.taskByID[t.ID]; ok {
				ti := &tr.Tasks[i]
				ti.Type, ti.Created, ti.CreatorCPU = t.Type, t.Created, t.CreatorCPU
				return nil
			}
			tr.taskByID[t.ID] = len(tr.Tasks)
			tr.Tasks = append(tr.Tasks, TaskInfo{
				ID: t.ID, Type: t.Type, Created: t.Created,
				CreatorCPU: t.CreatorCPU, ExecCPU: -1,
			})
			return nil
		},
		State: func(s trace.StateEvent) error {
			cpu(s.CPU).States = append(cpu(s.CPU).States, s)
			return nil
		},
		Discrete: func(d trace.DiscreteEvent) error {
			cpu(d.CPU).Discrete = append(cpu(d.CPU).Discrete, d)
			return nil
		},
		CounterDesc: func(d trace.CounterDesc) error {
			counter(d.ID).Desc = d
			return nil
		},
		Sample: func(s trace.CounterSample) error {
			c := counter(s.Counter)
			for int(s.CPU) >= len(c.PerCPU) {
				c.PerCPU = append(c.PerCPU, nil)
			}
			c.PerCPU[s.CPU] = append(c.PerCPU[s.CPU], s)
			if s.CPU > maxCPU {
				maxCPU = s.CPU
			}
			return nil
		},
		Comm: func(c trace.CommEvent) error {
			cpu(c.CPU).Comm = append(cpu(c.CPU).Comm, c)
			return nil
		},
		Region: func(rg trace.MemRegion) error {
			tr.Regions = append(tr.Regions, rg)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	tr.index(hasTopo, maxCPU)
	return tr, nil
}

// index finalizes the loaded trace: synthesizes a topology if absent,
// repairs ordering if a producer violated it, sorts the region table,
// derives task execution placement and computes the time span.
func (tr *Trace) index(hasTopo bool, maxCPU int32) {
	if !hasTopo {
		n := int(maxCPU) + 1
		if n < 1 {
			n = 1
		}
		tr.Topology = trace.Topology{
			Name:      "unknown",
			NumNodes:  1,
			NodeOfCPU: make([]int32, n),
			Distance:  []int32{0},
		}
	}
	for int(maxCPU) >= len(tr.CPUs) {
		tr.CPUs = append(tr.CPUs, CPUData{})
	}
	// The format guarantees per-CPU order; tolerate producers that
	// violated it by re-sorting (cheap when already sorted).
	for i := range tr.CPUs {
		c := &tr.CPUs[i]
		if !sort.SliceIsSorted(c.States, func(a, b int) bool { return c.States[a].Start < c.States[b].Start }) {
			sort.SliceStable(c.States, func(a, b int) bool { return c.States[a].Start < c.States[b].Start })
		}
		if !sort.SliceIsSorted(c.Discrete, func(a, b int) bool { return c.Discrete[a].Time < c.Discrete[b].Time }) {
			sort.SliceStable(c.Discrete, func(a, b int) bool { return c.Discrete[a].Time < c.Discrete[b].Time })
		}
		if !sort.SliceIsSorted(c.Comm, func(a, b int) bool { return c.Comm[a].Time < c.Comm[b].Time }) {
			sort.SliceStable(c.Comm, func(a, b int) bool { return c.Comm[a].Time < c.Comm[b].Time })
		}
	}
	for _, c := range tr.Counters {
		for cpu := range c.PerCPU {
			s := c.PerCPU[cpu]
			if !sort.SliceIsSorted(s, func(a, b int) bool { return s[a].Time < s[b].Time }) {
				sort.SliceStable(s, func(a, b int) bool { return s[a].Time < s[b].Time })
			}
		}
	}
	sort.Slice(tr.Regions, func(a, b int) bool { return tr.Regions[a].Addr < tr.Regions[b].Addr })

	// Derive task placement from execution states; synthesize tasks
	// for traces without task records (Section VI-A tolerance).
	var start, end trace.Time
	first := true
	for i := range tr.CPUs {
		for _, s := range tr.CPUs[i].States {
			if first || s.Start < start {
				start = s.Start
			}
			if first || s.End > end {
				end = s.End
			}
			first = false
			if s.State != trace.StateTaskExec || s.Task == trace.NoTask {
				continue
			}
			idx, ok := tr.taskByID[s.Task]
			if !ok {
				idx = len(tr.Tasks)
				tr.taskByID[s.Task] = idx
				tr.Tasks = append(tr.Tasks, TaskInfo{ID: s.Task, ExecCPU: -1})
			}
			ti := &tr.Tasks[idx]
			ti.ExecCPU = s.CPU
			ti.ExecStart = s.Start
			ti.ExecEnd = s.End
		}
	}
	for _, c := range tr.Counters {
		for cpu := range c.PerCPU {
			s := c.PerCPU[cpu]
			if len(s) == 0 {
				continue
			}
			if first || s[0].Time < start {
				start = s[0].Time
			}
			if first || s[len(s)-1].Time > end {
				end = s[len(s)-1].Time
			}
			first = false
		}
	}
	tr.Span = Interval{Start: start, End: end}
	sort.Slice(tr.Types, func(a, b int) bool { return tr.Types[a].ID < tr.Types[b].ID })
	for i, t := range tr.Types {
		tr.typeByID[t.ID] = i
	}
}
