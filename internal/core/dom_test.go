package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/openstream/aftermath/internal/trace"
)

// bruteDominant reimplements the renderer's sequential scan (first
// strictly-greater cover wins) over StatesIn, optionally restricted
// to task-execution states.
func bruteDominant(tr *Trace, cpu int32, t0, t1 trace.Time, execOnly bool) (trace.StateEvent, bool) {
	var best trace.StateEvent
	var bestCover trace.Time
	for _, ev := range tr.StatesIn(cpu, t0, t1) {
		if execOnly && ev.State != trace.StateTaskExec {
			continue
		}
		s, e := ev.Start, ev.End
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		if cover := e - s; cover > bestCover {
			bestCover, best = cover, ev
		}
	}
	return best, bestCover > 0
}

func bruteCover(tr *Trace, cpu int32, state trace.WorkerState, t0, t1 trace.Time) trace.Time {
	var in trace.Time
	for _, ev := range tr.StatesIn(cpu, t0, t1) {
		if ev.State != state {
			continue
		}
		s, e := ev.Start, ev.End
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		if e > s {
			in += e - s
		}
	}
	return in
}

// checkDomAgainstScan compares every DomIndex answer on a snapshot
// against the brute-force scans, over randomized windows.
func checkDomAgainstScan(t *testing.T, ctx string, tr *Trace, rng *rand.Rand, queries int) {
	t.Helper()
	if tr.Span.Duration() <= 0 {
		return
	}
	di := tr.DomIndex()
	span := tr.Span.Duration()
	for q := 0; q < queries; q++ {
		cpu := int32(rng.Intn(tr.NumCPUs() + 1)) // +1: out-of-range CPU
		dc := di.CPU(tr, cpu)
		t0 := tr.Span.Start - 10 + rng.Int63n(span+20)
		t1 := t0 + rng.Int63n(span/3+2)
		ev, ok, indexed := dc.DominantState(t0, t1)
		wantEv, wantOK := bruteDominant(tr, cpu, t0, t1, false)
		if indexed && (ok != wantOK || (ok && ev != wantEv)) {
			t.Fatalf("%s: DominantState(%d, %d, %d) = (%+v, %v), scan wants (%+v, %v)",
				ctx, cpu, t0, t1, ev, ok, wantEv, wantOK)
		}
		ev, ok, indexed = dc.DominantExec(t0, t1)
		wantEv, wantOK = bruteDominant(tr, cpu, t0, t1, true)
		if indexed && (ok != wantOK || (ok && ev != wantEv)) {
			t.Fatalf("%s: DominantExec(%d, %d, %d) = (%+v, %v), scan wants (%+v, %v)",
				ctx, cpu, t0, t1, ev, ok, wantEv, wantOK)
		}
		st := trace.WorkerState(rng.Intn(trace.NumWorkerStates))
		cover, indexed := dc.StateCover(st, t0, t1)
		if want := bruteCover(tr, cpu, st, t0, t1); indexed && cover != want {
			t.Fatalf("%s: StateCover(%d, %v, %d, %d) = %d, scan wants %d", ctx, cpu, st, t0, t1, cover, want)
		}
	}
}

// TestDomIndexBatchMatchesScan: the eagerly built index of a batch
// load answers exactly like the event scans.
func TestDomIndexBatchMatchesScan(t *testing.T) {
	tr := loadLive(t) // cold batch load of the live test stream
	rng := rand.New(rand.NewSource(3))
	checkDomAgainstScan(t, "batch", tr, rng, 600)
}

// loadLive cold-loads the liveTestBytes stream as a batch trace.
func loadLive(t *testing.T) *Trace {
	t.Helper()
	tr, err := FromReader(bytes.NewReader(liveTestBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestDomIndexLiveMatchesScan drives the incremental append path: a
// Live trace fed in random batch sizes, with every published
// snapshot's (seeded, mragg-append-extended) index checked against
// brute-force scans, and against a cold load of the same prefix.
func TestDomIndexLiveMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	lv := NewLive()
	var pending []trace.StateEvent
	nextStart := make([]int64, 4)
	for i := 0; i < 3000; i++ {
		cpu := rng.Intn(4)
		st := trace.WorkerState(rng.Intn(trace.NumWorkerStates))
		d := int64(rng.Intn(20))
		ev := trace.StateEvent{CPU: int32(cpu), State: st, Start: nextStart[cpu], End: nextStart[cpu] + d}
		if st == trace.StateTaskExec {
			ev.Task = trace.TaskID(i + 1)
		}
		nextStart[cpu] += d + int64(rng.Intn(3))
		pending = append(pending, ev)
		if len(pending) >= rng.Intn(400)+50 || i == 2999 {
			b := &trace.RecordBatch{States: pending, MaxCPU: 3}
			if err := lv.Append(b); err != nil {
				t.Fatal(err)
			}
			pending = nil
			snap, _ := lv.Publish()
			checkDomAgainstScan(t, "live", snap, rng, 120)
		}
	}
}

// TestDomIndexLiveOutOfOrder: a producer that violates per-CPU order
// dirties the CPU; its snapshots must still answer correctly (lazy
// rebuild over the repaired arrays or scan fallback).
func TestDomIndexLiveOutOfOrder(t *testing.T) {
	lv := NewLive()
	b1 := &trace.RecordBatch{MaxCPU: 0, States: []trace.StateEvent{
		{CPU: 0, State: trace.StateIdle, Start: 100, End: 200},
		{CPU: 0, State: trace.StateTaskExec, Task: 1, Start: 200, End: 260},
	}}
	if err := lv.Append(b1); err != nil {
		t.Fatal(err)
	}
	lv.Publish()
	// Out of order: starts before the previous tail.
	b2 := &trace.RecordBatch{MaxCPU: 0, States: []trace.StateEvent{
		{CPU: 0, State: trace.StateSync, Start: 0, End: 50},
	}}
	if err := lv.Append(b2); err != nil {
		t.Fatal(err)
	}
	snap, _ := lv.Publish()
	rng := rand.New(rand.NewSource(5))
	checkDomAgainstScan(t, "out-of-order", snap, rng, 300)
	// The repaired snapshot is sorted, so its lazily built index must
	// actually be used (indexed == true) and agree.
	ev, ok, indexed := snap.DomIndex().CPU(snap, 0).DominantState(0, 300)
	if !indexed || !ok {
		t.Fatalf("repaired snapshot unindexable: ok=%v indexed=%v", ok, indexed)
	}
	if ev.State != trace.StateIdle {
		t.Errorf("dominant over [0,300) = %v, want idle", ev.State)
	}

	// A third batch after the dirty flag: the dead chain must not be
	// extended incorrectly either.
	b3 := &trace.RecordBatch{MaxCPU: 0, States: []trace.StateEvent{
		{CPU: 0, State: trace.StateIdle, Start: 300, End: 400},
	}}
	if err := lv.Append(b3); err != nil {
		t.Fatal(err)
	}
	snap, _ = lv.Publish()
	checkDomAgainstScan(t, "out-of-order-2", snap, rng, 300)
}
