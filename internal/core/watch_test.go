package core

import (
	"context"
	"testing"
	"time"

	"github.com/openstream/aftermath/internal/trace"
)

// recvEvent reads one event with a deadline, failing the test on
// timeout or channel close.
func recvEvent(t *testing.T, ch <-chan TraceEvent) TraceEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed unexpectedly")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a trace event")
	}
	panic("unreachable")
}

// TestWatchDelivers: every publish wakes a keeping-up subscriber with
// the new epoch.
func TestWatchDelivers(t *testing.T) {
	lv := NewLive()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := lv.Watch(ctx)
	for want := uint64(1); want <= 3; want++ {
		publish(t, lv, spillBatch(2, 10, int64(want)*10000))
		ev := recvEvent(t, ch)
		if ev.Epoch != want {
			t.Fatalf("event epoch = %d, want %d", ev.Epoch, want)
		}
		if ev.Err != nil {
			t.Fatalf("unexpected event error: %v", ev.Err)
		}
	}
}

// TestWatchCoalescing: a subscriber that does not read while many
// epochs publish wakes to exactly ONE event describing the latest
// epoch — never a backlog of stale ones.
func TestWatchCoalescing(t *testing.T) {
	lv := NewLive()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := lv.Watch(ctx)
	const rounds = 10
	for i := 0; i < rounds; i++ {
		publish(t, lv, spillBatch(2, 5, int64(i)*10000))
	}
	ev := recvEvent(t, ch)
	if ev.Epoch != rounds {
		t.Fatalf("coalesced event epoch = %d, want %d (the latest)", ev.Epoch, rounds)
	}
	// Nothing published since the drain: the channel must be empty, or
	// the consumer would replay stale epochs.
	select {
	case stale := <-ch:
		t.Fatalf("second event %+v after coalescing drain, want none", stale)
	default:
	}
}

// TestWatchError: the first sticky ingest error is pushed, and the
// sticky error rides along on later epoch events.
func TestWatchError(t *testing.T) {
	lv := NewLive()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := lv.Watch(ctx)
	bad := &trace.RecordBatch{States: []trace.StateEvent{{CPU: -1}}}
	if err := lv.Append(bad); err == nil {
		t.Fatal("append of an implausible CPU id did not fail")
	}
	ev := recvEvent(t, ch)
	if ev.Err == nil {
		t.Fatalf("error event carries no error: %+v", ev)
	}
	publish(t, lv, spillBatch(1, 5, 0))
	ev = recvEvent(t, ch)
	if ev.Epoch != 1 || ev.Err == nil {
		t.Fatalf("post-error epoch event = %+v, want epoch 1 with the sticky error", ev)
	}
}

// TestWatchCancel: cancelling the context closes the channel and
// unregisters the watcher (later publishes do not block or panic).
func TestWatchCancel(t *testing.T) {
	lv := NewLive()
	ctx, cancel := context.WithCancel(context.Background())
	ch := lv.Watch(ctx)
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				publish(t, lv, spillBatch(1, 5, 0)) // must not panic
				return
			}
		case <-deadline:
			t.Fatal("watch channel not closed after context cancel")
		}
	}
}

// TestWatchSpillChanged: a synchronous compaction pushes a spill event,
// and Live.SpillStats reflects the post-compaction state.
func TestWatchSpillChanged(t *testing.T) {
	lv := NewLive()
	lv.SetRetention(RetentionPolicy{Dir: t.TempDir(), SpillBytes: 1, Sync: true})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := lv.Watch(ctx)
	publish(t, lv, spillBatch(2, 50, 0))
	ev := recvEvent(t, ch)
	if !ev.SpillChanged {
		t.Fatalf("event after a sync spill = %+v, want SpillChanged", ev)
	}
	st, ok := lv.SpillStats()
	if !ok || st.Segments == 0 {
		t.Fatalf("Live.SpillStats = (%+v, %v), want spilled segments", st, ok)
	}
	if st.Pending != 0 {
		t.Fatalf("sync compaction left %d pending segments", st.Pending)
	}
}

// TestWatchConcurrent exercises notify vs. subscribe/cancel vs. a slow
// reader under the race detector.
func TestWatchConcurrent(t *testing.T) {
	lv := NewLive()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			publish(t, lv, spillBatch(2, 5, int64(i)*10000))
		}
	}()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ch := lv.Watch(ctx)
		select {
		case <-ch:
		case <-time.After(time.Millisecond):
		}
		cancel()
	}
	<-done
	// A final publish must still deliver to a fresh watcher.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := lv.Watch(ctx)
	lv.Notify()
	if ev := recvEvent(t, ch); ev.Epoch != 20 {
		t.Fatalf("Notify delivered epoch %d, want 20", ev.Epoch)
	}
}
