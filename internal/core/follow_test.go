package core

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFollowerTailsAppends: appended records show up as new epochs.
func TestFollowerTailsAppends(t *testing.T) {
	data := liveTestBytes(t)
	half := len(data) / 2
	path := filepath.Join(t.TempDir(), "run.atm")
	if err := os.WriteFile(path, data[:half], 0o644); err != nil {
		t.Fatal(err)
	}
	lv := NewLive()
	f, err := Follow(lv, path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Live() != lv {
		t.Fatal("Live() does not return the fed trace")
	}
	_, before := lv.Snapshot()

	w, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data[half:]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	waitFor(t, "appended records to publish", func() bool {
		_, epoch := lv.Snapshot()
		return epoch > before
	})
	waitFor(t, "full stream consumption", func() bool {
		return f.sr.Consumed() == int64(len(data))
	})
	want, err := FromReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := lv.Snapshot()
	compareTrace(t, "followed trace", snap, want)
	if lv.Err() != nil {
		t.Fatalf("healthy follow reports error: %v", lv.Err())
	}
}

// TestFollowerDetectsTruncation is the regression test for the silent
// rotation bug: the old poll loop kept reading at its stale offset
// after the file was truncated and rewritten, decoding garbage or
// hanging quietly. The follower must surface a sticky, descriptive
// ingest error instead.
func TestFollowerDetectsTruncation(t *testing.T) {
	data := liveTestBytes(t)
	path := filepath.Join(t.TempDir(), "run.atm")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lv := NewLive()
	f, err := Follow(lv, path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFor(t, "initial consumption", func() bool {
		return f.sr.Consumed() == int64(len(data))
	})

	// Rotate: truncate and start rewriting a shorter file — the classic
	// logrotate copytruncate shape.
	if err := os.WriteFile(path, data[:len(data)/4], 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "truncation error", func() bool { return lv.Err() != nil })
	msg := lv.Err().Error()
	if !strings.Contains(msg, "truncated") || !strings.Contains(msg, path) {
		t.Fatalf("truncation error not descriptive: %q", msg)
	}
	// Sticky: still reported after the file grows past the old size
	// again (the rewritten bytes are a different stream).
	big := append(append([]byte{}, data...), data...)
	if err := os.WriteFile(path, big, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if lv.Err() == nil || !strings.Contains(lv.Err().Error(), "truncated") {
		t.Fatal("truncation error did not stick")
	}
}

// TestFollowerDetectsDeletion: the watched file disappearing surfaces
// as a sticky error too.
func TestFollowerDetectsDeletion(t *testing.T) {
	data := liveTestBytes(t)
	path := filepath.Join(t.TempDir(), "run.atm")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lv := NewLive()
	f, err := Follow(lv, path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deletion error", func() bool { return lv.Err() != nil })
}

// TestFollowerCloseReleasesResources is the leak check: Close must
// stop the ticker goroutine and release the file handle, and be safe
// to call twice.
func TestFollowerCloseReleasesResources(t *testing.T) {
	data := liveTestBytes(t)
	path := filepath.Join(t.TempDir(), "run.atm")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	const n = 8
	followers := make([]*Follower, 0, n)
	for i := 0; i < n; i++ {
		lv := NewLive()
		lv.SetRetention(RetentionPolicy{Dir: t.TempDir(), SpillBytes: 1})
		f, err := Follow(lv, path, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		followers = append(followers, f)
	}
	for _, f := range followers {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+1
	})
	// The file handles are released: on Linux the open-fd count is
	// observable directly; elsewhere the goroutine check above is the
	// signal.
	if fds, err := os.ReadDir("/proc/self/fd"); err == nil {
		for _, fd := range fds {
			target, err := os.Readlink(filepath.Join("/proc/self/fd", fd.Name()))
			if err == nil && target == path {
				t.Fatalf("trace file %s still open after Close", path)
			}
		}
	}
}
