package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/openstream/aftermath/internal/par"
	"github.com/openstream/aftermath/internal/trace"
)

// Load reads and indexes a trace file.
func Load(path string) (*Trace, error) {
	rc, err := trace.Open(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return FromReader(rc)
}

// FromReader reads and indexes a trace from a stream.
//
// Loading is a pipeline: the decode stage turns the byte stream into
// typed record batches (parallel varint decoding inside
// trace.ReadBatched), a router applies global records (topology,
// types, tasks, counter registrations, regions) in stream order, and
// per-CPU shard workers append state, discrete, communication and
// sample arrays concurrently — records for different CPUs are
// independent, and batches arrive in stream order, so every per-CPU
// array is built in trace order without post-hoc merging. On a single
// CPU the whole pipeline collapses to a sequential loop.
func FromReader(r io.Reader) (*Trace, error) {
	return fromReader(r, par.Workers())
}

// FromDecoder builds a trace by draining an incremental decoder: the
// whole stream is fed through the live ingest path and the final
// snapshot returned. Foreign-format importers load through here — a
// snapshot is byte-identical to what a batch indexer would build from
// the same record stream (the TestStreamEqualsBatch guarantee), so one
// Decoder implementation gives a format both batch loading and live
// tailing.
func FromDecoder(d trace.Decoder) (*Trace, error) {
	lv := NewLive()
	if _, err := lv.Feed(d); err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	tr, _ := lv.Snapshot()
	return tr, nil
}

// Pipeline sizing: decode parallelism saturates well below large
// GOMAXPROCS values, and each extra shard re-scans every batch, so
// both are capped independently of the machine size.
const (
	maxDecodeWorkers = 16
	maxLoadShards    = 8
)

func fromReader(r io.Reader, workers int) (*Trace, error) {
	if workers <= 1 {
		return fromReaderSeq(r)
	}
	if workers > maxDecodeWorkers {
		workers = maxDecodeWorkers
	}
	tr := newTrace()

	nsh := workers
	if nsh > maxLoadShards {
		nsh = maxLoadShards
	}
	shards := make([]*loadShard, nsh)
	var wg sync.WaitGroup
	for i := range shards {
		shards[i] = &loadShard{
			n: nsh, id: i,
			ch:      make(chan *trace.RecordBatch, 4),
			samples: make(map[trace.CounterID][][]trace.CounterSample),
		}
		wg.Add(1)
		go func(sh *loadShard) {
			defer wg.Done()
			sh.run()
		}(shards[i])
	}

	var hasTopo bool
	maxCPU := int32(-1)
	err := trace.ReadBatched(r, workers, func(b *trace.RecordBatch) error {
		// Global records are rare; apply them in stream order here.
		for _, t := range b.Topologies {
			tr.Topology = t
			hasTopo = true
		}
		for _, t := range b.TaskTypes {
			if _, ok := tr.typeByID[t.ID]; !ok {
				tr.typeByID[t.ID] = len(tr.Types)
				tr.Types = append(tr.Types, t)
			}
		}
		for _, t := range b.Tasks {
			tr.applyTask(t)
		}
		// Register counters in first-touch order so the counter table
		// matches a sequential read, then apply the descriptions.
		for _, id := range b.CounterIDs {
			tr.counterFor(id)
		}
		for _, d := range b.Descs {
			tr.counterFor(d.ID).Desc = d
		}
		tr.Regions = append(tr.Regions, b.Regions...)
		if b.MaxCPU > maxCPU {
			maxCPU = b.MaxCPU
		}
		// Per-CPU families fan out to the shard workers. Every shard
		// sees every batch in order and keeps only its own CPUs, so
		// per-CPU order is preserved without coordination.
		for _, sh := range shards {
			sh.ch <- b
		}
		return nil
	})
	for _, sh := range shards {
		close(sh.ch)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}

	// Stitch the shard-owned arrays into the trace. Only slice headers
	// move here; the event data stays where the shards built it.
	if maxCPU >= 0 {
		tr.CPUs = make([]CPUData, maxCPU+1)
		for _, sh := range shards {
			for cpu := sh.id; cpu < len(sh.cpus); cpu += sh.n {
				tr.CPUs[cpu] = sh.cpus[cpu]
			}
		}
	}
	for _, c := range tr.Counters {
		id := c.Desc.ID
		perLen := 0
		for _, sh := range shards {
			if l := len(sh.samples[id]); l > perLen {
				perLen = l
			}
		}
		if perLen == 0 {
			continue
		}
		c.PerCPU = make([][]trace.CounterSample, perLen)
		for _, sh := range shards {
			for cpu, s := range sh.samples[id] {
				if s != nil {
					c.PerCPU[cpu] = s
				}
			}
		}
	}

	tr.index(hasTopo, maxCPU, workers)
	return tr, nil
}

// fromReaderSeq is the sequential load path, used when a single
// worker is available. It is the reference implementation the
// parallel pipeline must reproduce exactly (see TestLoadParallelMatch).
func fromReaderSeq(r io.Reader) (*Trace, error) {
	tr := newTrace()
	var hasTopo bool
	maxCPU := int32(-1)
	// checkCPU mirrors the parallel decoder's validation so both
	// paths reject a corrupt negative CPU id with the same error
	// instead of panicking.
	checkCPU := func(id int32) error {
		if id < 0 {
			return fmt.Errorf("trace: negative CPU id %d", id)
		}
		return nil
	}
	cpu := func(id int32) *CPUData {
		for int(id) >= len(tr.CPUs) {
			tr.CPUs = append(tr.CPUs, CPUData{})
		}
		if id > maxCPU {
			maxCPU = id
		}
		return &tr.CPUs[id]
	}

	err := trace.Read(r, trace.Handler{
		Topology: func(t trace.Topology) error {
			tr.Topology = t
			hasTopo = true
			return nil
		},
		TaskType: func(t trace.TaskType) error {
			if _, ok := tr.typeByID[t.ID]; !ok {
				tr.typeByID[t.ID] = len(tr.Types)
				tr.Types = append(tr.Types, t)
			}
			return nil
		},
		Task: func(t trace.Task) error {
			tr.applyTask(t)
			return nil
		},
		State: func(s trace.StateEvent) error {
			if err := checkCPU(s.CPU); err != nil {
				return err
			}
			cpu(s.CPU).States = append(cpu(s.CPU).States, s)
			return nil
		},
		Discrete: func(d trace.DiscreteEvent) error {
			if err := checkCPU(d.CPU); err != nil {
				return err
			}
			cpu(d.CPU).Discrete = append(cpu(d.CPU).Discrete, d)
			return nil
		},
		CounterDesc: func(d trace.CounterDesc) error {
			tr.counterFor(d.ID).Desc = d
			return nil
		},
		Sample: func(s trace.CounterSample) error {
			if err := checkCPU(s.CPU); err != nil {
				return err
			}
			c := tr.counterFor(s.Counter)
			for int(s.CPU) >= len(c.PerCPU) {
				c.PerCPU = append(c.PerCPU, nil)
			}
			c.PerCPU[s.CPU] = append(c.PerCPU[s.CPU], s)
			if s.CPU > maxCPU {
				maxCPU = s.CPU
			}
			return nil
		},
		Comm: func(c trace.CommEvent) error {
			if err := checkCPU(c.CPU); err != nil {
				return err
			}
			cpu(c.CPU).Comm = append(cpu(c.CPU).Comm, c)
			return nil
		},
		Region: func(rg trace.MemRegion) error {
			tr.Regions = append(tr.Regions, rg)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	tr.index(hasTopo, maxCPU, 1)
	return tr, nil
}

func newTrace() *Trace {
	return &Trace{
		typeByID:    make(map[trace.TypeID]int),
		taskByID:    make(map[trace.TaskID]int),
		counterByID: make(map[trace.CounterID]int),
	}
}

// applyTask merges one task record: the first record creates the
// entry, later records for the same ID update its metadata.
func (tr *Trace) applyTask(t trace.Task) {
	if i, ok := tr.taskByID[t.ID]; ok {
		ti := &tr.Tasks[i]
		ti.Type, ti.Created, ti.CreatorCPU = t.Type, t.Created, t.CreatorCPU
		return
	}
	tr.taskByID[t.ID] = len(tr.Tasks)
	tr.Tasks = append(tr.Tasks, TaskInfo{
		ID: t.ID, Type: t.Type, Created: t.Created,
		CreatorCPU: t.CreatorCPU, ExecCPU: -1,
	})
}

// loadShard owns the CPUs whose id is congruent to id modulo n and
// appends their per-CPU event and sample arrays. Batches arrive in
// stream order on ch, so each owned array is built in trace order.
type loadShard struct {
	n, id   int
	ch      chan *trace.RecordBatch
	cpus    []CPUData // indexed by CPU id; entries with cpu%n != id stay zero
	samples map[trace.CounterID][][]trace.CounterSample
}

func (sh *loadShard) owns(cpu int32) bool { return int(cpu)%sh.n == sh.id }

func (sh *loadShard) cpu(id int32) *CPUData {
	for int(id) >= len(sh.cpus) {
		sh.cpus = append(sh.cpus, CPUData{})
	}
	return &sh.cpus[id]
}

func (sh *loadShard) run() {
	for b := range sh.ch {
		for _, s := range b.States {
			if sh.owns(s.CPU) {
				c := sh.cpu(s.CPU)
				c.States = append(c.States, s)
			}
		}
		for _, ev := range b.Discrete {
			if sh.owns(ev.CPU) {
				c := sh.cpu(ev.CPU)
				c.Discrete = append(c.Discrete, ev)
			}
		}
		for _, ev := range b.Comms {
			if sh.owns(ev.CPU) {
				c := sh.cpu(ev.CPU)
				c.Comm = append(c.Comm, ev)
			}
		}
		for _, s := range b.Samples {
			if !sh.owns(s.CPU) {
				continue
			}
			per := sh.samples[s.Counter]
			for int(s.CPU) >= len(per) {
				per = append(per, nil)
			}
			per[s.CPU] = append(per[s.CPU], s)
			sh.samples[s.Counter] = per
		}
	}
}

// execSpan is one task execution interval collected from a CPU's
// state events, in event order. Both the batch indexer and the live
// snapshot path apply these through applyExecs.
type execSpan struct {
	task       trace.TaskID
	start, end trace.Time
}

// synthTopology returns the flat single-node topology synthesized for
// traces without a topology record.
func synthTopology(maxCPU int32) trace.Topology {
	n := int(maxCPU) + 1
	if n < 1 {
		n = 1
	}
	return trace.Topology{
		Name:      "unknown",
		NumNodes:  1,
		NodeOfCPU: make([]int32, n),
		Distance:  []int32{0},
	}
}

// applyExecs applies task execution placements onto tasks in CPU and
// event order — the sequential last-writer-wins semantics of a batch
// load — synthesizing entries for tasks the trace carries no record
// for (Section VI-A tolerance). byID is updated for synthesized tasks;
// the (possibly grown) task slice is returned.
func applyExecs(tasks []TaskInfo, byID map[trace.TaskID]int, perCPU [][]execSpan) []TaskInfo {
	for cpu := range perCPU {
		for _, e := range perCPU[cpu] {
			idx, ok := byID[e.task]
			if !ok {
				idx = len(tasks)
				byID[e.task] = idx
				tasks = append(tasks, TaskInfo{ID: e.task, ExecCPU: -1})
			}
			ti := &tasks[idx]
			ti.ExecCPU = int32(cpu)
			ti.ExecStart = e.start
			ti.ExecEnd = e.end
		}
	}
	return tasks
}

// collectExecs returns the task execution intervals of a sorted state
// array, in event order.
func collectExecs(states []trace.StateEvent) []execSpan {
	var out []execSpan
	for _, s := range states {
		if s.State == trace.StateTaskExec && s.Task != trace.NoTask {
			out = append(out, execSpan{s.Task, s.Start, s.End})
		}
	}
	return out
}

// finalizeTypes sorts the type table by ID in place and rewrites byID
// to the sorted positions.
func finalizeTypes(types []trace.TaskType, byID map[trace.TypeID]int) {
	sort.Slice(types, func(a, b int) bool { return types[a].ID < types[b].ID })
	for i, t := range types {
		byID[t.ID] = i
	}
}

// sortRegions sorts the region table by address in place.
func sortRegions(regions []trace.MemRegion) {
	sort.Slice(regions, func(a, b int) bool { return regions[a].Addr < regions[b].Addr })
}

// buildCounterNameIndex returns the name index over the counter table:
// the first counter (in table order) wins each name.
func buildCounterNameIndex(counters []*Counter) map[string]int {
	byName := make(map[string]int, len(counters))
	for i, c := range counters {
		if _, ok := byName[c.Desc.Name]; !ok {
			byName[c.Desc.Name] = i
		}
	}
	return byName
}

// index finalizes the loaded trace: synthesizes a topology if absent,
// repairs ordering if a producer violated it, sorts the region table,
// derives task execution placement and computes the time span. The
// per-CPU and per-(counter, cpu) passes run on up to workers
// goroutines; their results merge serially in CPU order so the
// outcome is identical to a sequential pass.
func (tr *Trace) index(hasTopo bool, maxCPU int32, workers int) {
	if !hasTopo {
		tr.Topology = synthTopology(maxCPU)
	}
	for int(maxCPU) >= len(tr.CPUs) {
		tr.CPUs = append(tr.CPUs, CPUData{})
	}

	// Per-CPU finalization: verify/repair event order (the format
	// guarantees per-CPU order; tolerate producers that violated it by
	// re-sorting, cheap when already sorted), find the CPU's time
	// bounds, and collect task execution intervals in event order.
	type cpuIndex struct {
		min, max trace.Time
		has      bool
		execs    []execSpan
		dom      *DomCPU
	}
	perCPU := make([]cpuIndex, len(tr.CPUs))
	par.Do(workers, len(tr.CPUs), func(i int) {
		c := &tr.CPUs[i]
		if !sort.SliceIsSorted(c.States, func(a, b int) bool { return c.States[a].Start < c.States[b].Start }) {
			sort.SliceStable(c.States, func(a, b int) bool { return c.States[a].Start < c.States[b].Start })
		}
		if !sort.SliceIsSorted(c.Discrete, func(a, b int) bool { return c.Discrete[a].Time < c.Discrete[b].Time }) {
			sort.SliceStable(c.Discrete, func(a, b int) bool { return c.Discrete[a].Time < c.Discrete[b].Time })
		}
		if !sort.SliceIsSorted(c.Comm, func(a, b int) bool { return c.Comm[a].Time < c.Comm[b].Time }) {
			sort.SliceStable(c.Comm, func(a, b int) bool { return c.Comm[a].Time < c.Comm[b].Time })
		}
		res := &perCPU[i]
		for _, s := range c.States {
			if !res.has || s.Start < res.min {
				res.min = s.Start
			}
			if !res.has || s.End > res.max {
				res.max = s.End
			}
			res.has = true
		}
		res.execs = collectExecs(c.States)
		// Build the dominance pyramid over the freshly sorted states
		// (Section VI-B: rendering cost proportional to pixels, not
		// events), eagerly so the first viewer request pays nothing.
		res.dom = &DomCPU{}
		res.dom.build(c.States)
	})

	// Per-(counter, cpu) sample arrays are independent too.
	type samplePair struct {
		c   *Counter
		cpu int
	}
	var pairs []samplePair
	for _, c := range tr.Counters {
		for cpu := range c.PerCPU {
			if len(c.PerCPU[cpu]) > 1 {
				pairs = append(pairs, samplePair{c, cpu})
			}
		}
	}
	par.Do(workers, len(pairs), func(i int) {
		s := pairs[i].c.PerCPU[pairs[i].cpu]
		if !sort.SliceIsSorted(s, func(a, b int) bool { return s[a].Time < s[b].Time }) {
			sort.SliceStable(s, func(a, b int) bool { return s[a].Time < s[b].Time })
		}
	})

	sortRegions(tr.Regions)

	// Serial merge, in CPU order: the span, and task placement derived
	// from execution states — synthesizing tasks for traces without
	// task records (Section VI-A tolerance). Applying placements in
	// CPU and event order reproduces the sequential last-writer-wins
	// semantics exactly.
	var start, end trace.Time
	first := true
	for i := range perCPU {
		r := &perCPU[i]
		if !r.has {
			continue
		}
		if first || r.min < start {
			start = r.min
		}
		if first || r.max > end {
			end = r.max
		}
		first = false
	}
	execs := make([][]execSpan, len(perCPU))
	for cpu := range perCPU {
		execs[cpu] = perCPU[cpu].execs
	}
	tr.Tasks = applyExecs(tr.Tasks, tr.taskByID, execs)
	for _, c := range tr.Counters {
		for cpu := range c.PerCPU {
			s := c.PerCPU[cpu]
			if len(s) == 0 {
				continue
			}
			if first || s[0].Time < start {
				start = s[0].Time
			}
			if first || s[len(s)-1].Time > end {
				end = s[len(s)-1].Time
			}
			first = false
		}
	}
	tr.Span = Interval{Start: start, End: end}
	finalizeTypes(tr.Types, tr.typeByID)
	tr.counterByName = buildCounterNameIndex(tr.Counters)

	di := NewDomIndex()
	for i := range perCPU {
		if perCPU[i].dom != nil {
			di.seed(int32(i), perCPU[i].dom)
		}
	}
	tr.domOnce.Do(func() { tr.dom = di })
}
