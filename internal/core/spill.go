// Epoch spilling: bounded-memory live ingest.
//
// A long-lived -follow session accumulates per-CPU event arrays and
// counter samples without bound. Spilling moves frozen epoch ranges —
// the clean, already-published prefixes of each column — out of the
// builder's RAM tail into mmap-backed columnar segment files
// (internal/store), so the hot tail stays small while reads stitch the
// spilled columns and the RAM tail behind the unchanged Trace snapshot
// interface. Aged-out segments are dropped under a configurable
// byte/age budget (RetentionPolicy), turning the live trace into a
// sliding window over the run.
//
// Concurrency model: all builder mutation happens under Live.mu.
// Published snapshots hold an immutable *frozenTrace; every change to
// the frozen state (freeze, install, drop, unspill) clones it first
// (copy-on-write of the slice spines — the event columns themselves
// are shared), so readers of older epochs never observe a mutation.
// Segment files are written by a background goroutine; the install
// step swaps the heap columns for the mapped views under the lock, and
// the heap copies die with the snapshots that reference them.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"unsafe"

	"github.com/openstream/aftermath/internal/store"
	"github.com/openstream/aftermath/internal/trace"
)

// RetentionPolicy bounds the memory of a long-lived Live trace. The
// zero value disables spilling entirely (the pre-spilling behavior:
// everything stays in RAM forever).
type RetentionPolicy struct {
	// Dir is the directory segment files are written to. Empty
	// disables spilling.
	Dir string
	// SpillBytes is the RAM-tail budget: when the builder's unspilled
	// event and sample columns exceed it, the clean tails freeze into
	// a new on-disk segment at the next publish. <= 0 disables
	// spilling.
	SpillBytes int64
	// MaxBytes caps the total spilled bytes: oldest segments beyond it
	// are dropped (events leave the trace). <= 0 means unlimited.
	MaxBytes int64
	// MaxAge drops segments whose newest event is older than the
	// current span end minus MaxAge. <= 0 means unlimited.
	MaxAge trace.Time
	// Sync compacts segments synchronously inside Publish instead of
	// on a background goroutine. Deterministic; meant for tests.
	Sync bool
}

func (p RetentionPolicy) enabled() bool { return p.Dir != "" && p.SpillBytes > 0 }

// Per-element byte sizes of the spillable columns, as stored (raw
// in-memory layout).
const (
	stateEventBytes    = int64(unsafe.Sizeof(trace.StateEvent{}))
	discreteEventBytes = int64(unsafe.Sizeof(trace.DiscreteEvent{}))
	commEventBytes     = int64(unsafe.Sizeof(trace.CommEvent{}))
	counterSampleBytes = int64(unsafe.Sizeof(trace.CounterSample{}))
)

// segFormatVersion versions the segment meta layout inside the store
// container (which has its own magic + version).
const segFormatVersion = 1

// layoutHash fingerprints the in-memory layout of every record type
// the store dumps raw, plus the word size. A file written by a build
// with a different field layout (or architecture) fails to open
// instead of misparsing. Endianness is checked separately by the store
// header probe.
func layoutHash() uint64 {
	var se trace.StateEvent
	var de trace.DiscreteEvent
	var ce trace.CommEvent
	var cs trace.CounterSample
	var mr trace.MemRegion
	var ti TaskInfo
	h := uint64(1469598103934665603) // FNV-1a offset basis
	mix := func(vs ...uintptr) {
		for _, v := range vs {
			h ^= uint64(v)
			h *= 1099511628211
		}
	}
	mix(unsafe.Sizeof(uintptr(0)))
	mix(unsafe.Sizeof(se), unsafe.Offsetof(se.CPU), unsafe.Offsetof(se.State),
		unsafe.Offsetof(se.Start), unsafe.Offsetof(se.End), unsafe.Offsetof(se.Task))
	mix(unsafe.Sizeof(de), unsafe.Offsetof(de.CPU), unsafe.Offsetof(de.Kind),
		unsafe.Offsetof(de.Time), unsafe.Offsetof(de.Arg))
	mix(unsafe.Sizeof(ce), unsafe.Offsetof(ce.Kind), unsafe.Offsetof(ce.CPU),
		unsafe.Offsetof(ce.SrcCPU), unsafe.Offsetof(ce.Time), unsafe.Offsetof(ce.Task),
		unsafe.Offsetof(ce.Addr), unsafe.Offsetof(ce.Size))
	mix(unsafe.Sizeof(cs), unsafe.Offsetof(cs.CPU), unsafe.Offsetof(cs.Counter),
		unsafe.Offsetof(cs.Time), unsafe.Offsetof(cs.Value))
	mix(unsafe.Sizeof(mr), unsafe.Offsetof(mr.ID), unsafe.Offsetof(mr.Addr),
		unsafe.Offsetof(mr.Size), unsafe.Offsetof(mr.Node))
	mix(unsafe.Sizeof(ti), unsafe.Offsetof(ti.ID), unsafe.Offsetof(ti.Type),
		unsafe.Offsetof(ti.Created), unsafe.Offsetof(ti.CreatorCPU),
		unsafe.Offsetof(ti.ExecCPU), unsafe.Offsetof(ti.ExecStart), unsafe.Offsetof(ti.ExecEnd))
	return h
}

// spillSeg is one frozen epoch range: the columns moved out of the RAM
// tail together at one publish. Its fields are written only under
// Live.mu; snapshot readers never touch them (they read the
// frozenTrace aggregates instead).
type spillSeg struct {
	id      int
	bytes   int64
	records int64
	// minTime/maxTime approximate the segment's time range (from the
	// first/last event of each moved column); used by age retention.
	minTime trace.Time
	maxTime trace.Time
	hasTime bool
	// path and m are set once the background compaction installs the
	// written file; until then the columns are heap-backed.
	path string
	m    *store.Mapped
}

// frozenCPU holds one CPU's spilled columns, one entry per segment,
// aligned with frozenTrace.segs. A nil entry means the segment carried
// nothing for this (cpu, family).
type frozenCPU struct {
	states   [][]trace.StateEvent
	discrete [][]trace.DiscreteEvent
	comm     [][]trace.CommEvent
}

// frozenTrace is the immutable spilled portion of a live trace. A
// published snapshot references one; every mutation goes through
// clone, so the spines below are never written after publication. The
// event columns themselves are shared between generations (and swap
// from heap to mmap backing on install, in a fresh clone).
type frozenTrace struct {
	segs []*spillSeg
	cpus []frozenCPU
	// samples[counter][cpu][seg] holds the spilled sample columns, in
	// counter-table order.
	samples [][][][]trace.CounterSample

	spilledBytes int64
	pending      int // segments frozen but not yet compacted to disk
	droppedSegs  int
	droppedBytes int64
	spillErr     string // first compaction failure, sticky
}

func (f *frozenTrace) clone() *frozenTrace {
	nf := &frozenTrace{
		segs:         append([]*spillSeg(nil), f.segs...),
		cpus:         make([]frozenCPU, len(f.cpus)),
		samples:      make([][][][]trace.CounterSample, len(f.samples)),
		spilledBytes: f.spilledBytes,
		pending:      f.pending,
		droppedSegs:  f.droppedSegs,
		droppedBytes: f.droppedBytes,
		spillErr:     f.spillErr,
	}
	for i := range f.cpus {
		nf.cpus[i] = frozenCPU{
			states:   append([][]trace.StateEvent(nil), f.cpus[i].states...),
			discrete: append([][]trace.DiscreteEvent(nil), f.cpus[i].discrete...),
			comm:     append([][]trace.CommEvent(nil), f.cpus[i].comm...),
		}
	}
	for i := range f.samples {
		rows := make([][][]trace.CounterSample, len(f.samples[i]))
		for cpu := range f.samples[i] {
			rows[cpu] = append([][]trace.CounterSample(nil), f.samples[i][cpu]...)
		}
		nf.samples[i] = rows
	}
	return nf
}

// SpillStats reports a snapshot's spill/retention state. ok is false
// for traces that never spilled.
type SpillStats struct {
	// Segments and SpilledBytes describe the spilled columns currently
	// part of the trace; Pending of those segments still await their
	// background compaction (their columns are heap-backed until
	// installed).
	Segments     int
	SpilledBytes int64
	Pending      int
	// DroppedSegs/DroppedBytes count data aged out under the retention
	// budget — events no longer part of the trace.
	DroppedSegs  int
	DroppedBytes int64
	// Err is the first segment compaction failure, if any. The data
	// stays in RAM when compaction fails; only the memory bound is
	// lost.
	Err string
}

// SpillStats reports the snapshot's spill state; ok is false when the
// trace has no spilled data.
func (tr *Trace) SpillStats() (s SpillStats, ok bool) {
	f := tr.frozen
	if f == nil {
		return SpillStats{}, false
	}
	return SpillStats{
		Segments:     len(f.segs),
		SpilledBytes: f.spilledBytes,
		Pending:      f.pending,
		DroppedSegs:  f.droppedSegs,
		DroppedBytes: f.droppedBytes,
		Err:          f.spillErr,
	}, true
}

// EventCounts returns the trace's total event count (states, discrete,
// communication) and counter sample count, spilled columns included.
func (tr *Trace) EventCounts() (events, samples int64) {
	for i := range tr.CPUs {
		c := &tr.CPUs[i]
		events += int64(len(c.States) + len(c.Discrete) + len(c.Comm))
	}
	if tr.frozen != nil {
		for i := range tr.frozen.cpus {
			fc := &tr.frozen.cpus[i]
			for _, s := range fc.states {
				events += int64(len(s))
			}
			for _, s := range fc.discrete {
				events += int64(len(s))
			}
			for _, s := range fc.comm {
				events += int64(len(s))
			}
		}
	}
	for _, c := range tr.Counters {
		for cpu := range c.PerCPU {
			samples += int64(len(c.PerCPU[cpu]))
		}
		for _, row := range c.frozen {
			for _, s := range row {
				samples += int64(len(s))
			}
		}
	}
	return events, samples
}

// Close releases the file mapping of a store-backed trace (OpenStore).
// Traces from Load, FromReader or live snapshots hold no mapping of
// their own and Close is a no-op for them (live segment mappings are
// released by finalizers once no snapshot references them).
func (tr *Trace) Close() error {
	if tr.backing != nil {
		return tr.backing.Close()
	}
	return nil
}

// stitchWin collects the window slices of time-ordered column segments
// plus the RAM tail into one slice: zero-copy when the window touches
// a single part (the overwhelmingly common case — viewer windows are
// small), a copy-concat when it crosses a segment boundary. win
// returns the [lo, hi) window of one sorted part. Returns nil for an
// empty window.
func stitchWin[T any](segs [][]T, tail []T, win func([]T) (int, int)) []T {
	var single []T
	var parts [][]T
	total := 0
	add := func(s []T) {
		if len(s) == 0 {
			return
		}
		lo, hi := win(s)
		if lo >= hi {
			return
		}
		p := s[lo:hi]
		switch {
		case total == 0:
			single = p
		case parts == nil:
			parts = [][]T{single, p}
		default:
			parts = append(parts, p)
		}
		total += len(p)
	}
	for _, s := range segs {
		add(s)
	}
	add(tail)
	if parts == nil {
		return single
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// frozenFor returns the spilled columns of a CPU, or nil.
func (tr *Trace) frozenFor(cpu int32) *frozenCPU {
	if tr.frozen == nil || int(cpu) >= len(tr.frozen.cpus) {
		return nil
	}
	return &tr.frozen.cpus[cpu]
}

// NumSamples returns the counter's sample count on a CPU, spilled
// columns included.
func (c *Counter) NumSamples(cpu int32) int {
	n := 0
	if int(cpu) < len(c.PerCPU) {
		n = len(c.PerCPU[cpu])
	}
	if int(cpu) < len(c.frozen) {
		for _, s := range c.frozen[cpu] {
			n += len(s)
		}
	}
	return n
}

// --- live-side spilling ---

// SetRetention installs the retention policy. Takes effect at the next
// publish; safe to call while ingest is running. Dir must belong to
// this live trace alone: when the policy first enables spilling, any
// leftovers of a previous process in Dir — segment files this trace
// cannot adopt, and *.tmp* debris of a compaction killed mid-write —
// are swept, so restarts into a reused spill directory do not
// accumulate dead files.
func (lv *Live) SetRetention(p RetentionPolicy) {
	lv.mu.Lock()
	if p.enabled() && !lv.retSwept {
		// Sweep before the policy becomes visible to publishes: nothing
		// can be writing into Dir yet, so every matching file is stale.
		lv.retSwept = true
		sweepSpillDir(p.Dir)
	}
	lv.ret = p
	lv.mu.Unlock()
}

// sweepSpillDir removes segment files and compaction debris left in a
// spill directory by a previous (possibly crashed) process.
func sweepSpillDir(dir string) {
	for _, pat := range []string{"seg-*.atms", "seg-*.atms.tmp*"} {
		matches, _ := filepath.Glob(filepath.Join(dir, pat))
		for _, f := range matches {
			os.Remove(f)
		}
	}
}

// Close waits for in-flight background segment compactions to finish.
// The live trace remains usable afterwards; Close exists so tests and
// shutdown paths do not leak goroutines or half-written files.
func (lv *Live) Close() error {
	lv.spillWG.Wait()
	return nil
}

// tailBytesLocked returns the byte size of the unspilled event and
// sample columns.
func (lv *Live) tailBytesLocked() int64 {
	var n int64
	for i := range lv.cpus {
		c := &lv.cpus[i]
		n += int64(len(c.States))*stateEventBytes +
			int64(len(c.Discrete))*discreteEventBytes +
			int64(len(c.Comm))*commEventBytes
	}
	for _, lc := range lv.counters {
		for cpu := range lc.c.PerCPU {
			n += int64(len(lc.c.PerCPU[cpu])) * counterSampleBytes
		}
	}
	return n
}

// maybeSpillLocked runs after each publish: freezes the RAM tail into
// a new segment when it exceeds the spill budget, kicks off (or, under
// Sync, runs) its compaction to disk, and applies the retention
// budget.
func (lv *Live) maybeSpillLocked() {
	if !lv.ret.enabled() {
		return
	}
	if lv.tailBytesLocked() >= lv.ret.SpillBytes {
		if seg, p := lv.freezeTailsLocked(); seg != nil {
			if lv.ret.Sync {
				m, vp, path, err := writeSegment(lv.ret.Dir, seg.id, p)
				lv.installLocked(seg, m, vp, path, err)
				lv.notifyWatchers(TraceEvent{Epoch: lv.snap.Load().epoch, SpillChanged: true})
			} else {
				// Capture the spill directory under mu: the goroutine
				// outlives this critical section, and ret is guarded.
				dir := lv.ret.Dir
				lv.spillWG.Add(1)
				go func() {
					defer lv.spillWG.Done()
					m, vp, path, err := writeSegment(dir, seg.id, p)
					lv.mu.Lock()
					lv.installLocked(seg, m, vp, path, err)
					lv.mu.Unlock()
					// Background compaction changes the spill state (Pending,
					// Err) without publishing an epoch: push it so status
					// surfaces do not serve the pre-compaction state forever.
					lv.notifyWatchers(TraceEvent{Epoch: lv.Epoch(), SpillChanged: true})
				}()
			}
		}
	}
	lv.applyRetentionLocked()
}

// padTo pads a per-segment column list with nil entries up to n, so
// lists of CPUs/counters that appeared after earlier segments stay
// aligned with the segment list.
func padTo[T any](lists [][]T, n int) [][]T {
	for len(lists) < n {
		lists = append(lists, nil)
	}
	return lists
}

// ensureFrozenLocked returns a fresh frozen generation grown to the
// current CPU and counter table sizes.
func (lv *Live) ensureFrozenLocked() *frozenTrace {
	var f *frozenTrace
	if lv.frozen == nil {
		f = &frozenTrace{}
	} else {
		f = lv.frozen.clone()
	}
	nseg := len(f.segs)
	for len(f.cpus) < len(lv.cpus) {
		f.cpus = append(f.cpus, frozenCPU{
			states:   make([][]trace.StateEvent, nseg),
			discrete: make([][]trace.DiscreteEvent, nseg),
			comm:     make([][]trace.CommEvent, nseg),
		})
	}
	for len(f.samples) < len(lv.counters) {
		f.samples = append(f.samples, nil)
	}
	for ci, lc := range lv.counters {
		rows := f.samples[ci]
		for len(rows) < len(lc.c.PerCPU) {
			row := make([][]trace.CounterSample, nseg)
			rows = append(rows, row)
		}
		f.samples[ci] = rows
	}
	return f
}

// segPayload lists the columns of one segment, for the compaction
// writer (heap slices going in, mmap views coming back out).
type segPayload struct {
	cpus    []segCPU
	samples []segSamples
}

type segCPU struct {
	cpu      int32
	states   []trace.StateEvent
	discrete []trace.DiscreteEvent
	comm     []trace.CommEvent
}

type segSamples struct {
	counter int // counter table index
	cpu     int32
	samples []trace.CounterSample
}

// freezeTailsLocked moves every clean, non-empty RAM tail column into
// a new frozen segment — O(columns) slice-header moves, no event is
// copied — and returns the segment and its compaction payload. Dirty
// families (out-of-order producers) never freeze: their repair path
// needs the whole array in RAM. Returns nil if nothing was freezable.
func (lv *Live) freezeTailsLocked() (*spillSeg, *segPayload) {
	f := lv.ensureFrozenLocked()
	seg := &spillSeg{id: lv.segSeq}
	p := &segPayload{}
	idx := len(f.segs)
	grow := func(ts ...trace.Time) {
		for _, t := range ts {
			if !seg.hasTime || t < seg.minTime {
				seg.minTime = t
			}
			if !seg.hasTime || t > seg.maxTime {
				seg.maxTime = t
			}
			seg.hasTime = true
		}
	}
	for cpu := range lv.cpus {
		c := &lv.cpus[cpu]
		o := &lv.order[cpu]
		fc := &f.cpus[cpu]
		fc.states = padTo(fc.states, idx)
		fc.discrete = padTo(fc.discrete, idx)
		fc.comm = padTo(fc.comm, idx)
		sc := segCPU{cpu: int32(cpu)}
		if s := c.States; !o.stateDirty && len(s) > 0 {
			fc.states = append(fc.states, s)
			o.nStateF += len(s)
			c.States = nil
			seg.records += int64(len(s))
			seg.bytes += int64(len(s)) * stateEventBytes
			grow(s[0].Start, s[len(s)-1].End)
			sc.states = s
		} else {
			fc.states = append(fc.states, nil)
		}
		if s := c.Discrete; !o.discreteDirty && len(s) > 0 {
			fc.discrete = append(fc.discrete, s)
			o.nDiscreteF += len(s)
			c.Discrete = nil
			seg.records += int64(len(s))
			seg.bytes += int64(len(s)) * discreteEventBytes
			grow(s[0].Time, s[len(s)-1].Time)
			sc.discrete = s
		} else {
			fc.discrete = append(fc.discrete, nil)
		}
		if s := c.Comm; !o.commDirty && len(s) > 0 {
			fc.comm = append(fc.comm, s)
			o.nCommF += len(s)
			c.Comm = nil
			seg.records += int64(len(s))
			seg.bytes += int64(len(s)) * commEventBytes
			grow(s[0].Time, s[len(s)-1].Time)
			sc.comm = s
		} else {
			fc.comm = append(fc.comm, nil)
		}
		if sc.states != nil || sc.discrete != nil || sc.comm != nil {
			p.cpus = append(p.cpus, sc)
		}
	}
	for ci, lc := range lv.counters {
		rows := f.samples[ci]
		for cpu := range lc.c.PerCPU {
			rows[cpu] = padTo(rows[cpu], idx)
			if s := lc.c.PerCPU[cpu]; !lc.dirty[cpu] && len(s) > 0 {
				rows[cpu] = append(rows[cpu], s)
				lc.fsamp[cpu] += len(s)
				lc.c.PerCPU[cpu] = nil
				seg.records += int64(len(s))
				seg.bytes += int64(len(s)) * counterSampleBytes
				grow(s[0].Time, s[len(s)-1].Time)
				p.samples = append(p.samples, segSamples{counter: ci, cpu: int32(cpu), samples: s})
			} else {
				rows[cpu] = append(rows[cpu], nil)
			}
		}
		f.samples[ci] = rows
	}
	if seg.bytes == 0 {
		// Nothing freezable: every column is empty or dirty. The clone
		// is discarded, so the published generation keeps its segment
		// alignment. (No builder state was touched: counts only moved
		// together with a column.)
		return nil, nil
	}
	f.segs = append(f.segs, seg)
	f.spilledBytes += seg.bytes
	f.pending++
	lv.frozen = f
	lv.segSeq++
	return seg, p
}

// writeSegment compacts a frozen segment's columns into a store file
// (tmp+rename, so crashes never leave a torn segment) and maps it
// back, returning the mapped payload whose slices mirror p's.
func writeSegment(dir string, id int, p *segPayload) (*store.Mapped, *segPayload, string, error) {
	path := filepath.Join(dir, fmt.Sprintf("seg-%06d.atms", id))
	w, err := store.Create(path)
	if err != nil {
		return nil, nil, "", err
	}
	var enc store.Enc
	enc.U64(segFormatVersion)
	enc.U64(layoutHash())
	enc.Int(len(p.cpus))
	for i := range p.cpus {
		sc := &p.cpus[i]
		enc.I64(int64(sc.cpu))
		enc.Ref(store.Put(w, sc.states))
		enc.Ref(store.Put(w, sc.discrete))
		enc.Ref(store.Put(w, sc.comm))
	}
	enc.Int(len(p.samples))
	for i := range p.samples {
		ss := &p.samples[i]
		enc.Int(ss.counter)
		enc.I64(int64(ss.cpu))
		enc.Ref(store.Put(w, ss.samples))
	}
	if err := w.Finish(enc.Bytes()); err != nil {
		return nil, nil, "", err
	}
	m, err := store.Open(path)
	if err != nil {
		os.Remove(path)
		return nil, nil, "", err
	}
	vp, err := readSegment(m)
	if err != nil {
		m.Close()
		os.Remove(path)
		return nil, nil, "", err
	}
	return m, vp, path, nil
}

// readSegment decodes a segment file's meta into views of its columns.
func readSegment(m *store.Mapped) (*segPayload, error) {
	d := store.NewDec(m.Meta())
	if v := d.U64(); d.Err() == nil && v != segFormatVersion {
		return nil, fmt.Errorf("store: unsupported segment format version %d", v)
	}
	if h := d.U64(); d.Err() == nil && h != layoutHash() {
		return nil, fmt.Errorf("store: segment written with an incompatible event layout")
	}
	p := &segPayload{}
	n := d.Int()
	for i := 0; i < n && d.Err() == nil; i++ {
		var sc segCPU
		sc.cpu = int32(d.I64())
		var err error
		if sc.states, err = store.View[trace.StateEvent](m, d.Ref()); err != nil {
			return nil, err
		}
		if sc.discrete, err = store.View[trace.DiscreteEvent](m, d.Ref()); err != nil {
			return nil, err
		}
		if sc.comm, err = store.View[trace.CommEvent](m, d.Ref()); err != nil {
			return nil, err
		}
		p.cpus = append(p.cpus, sc)
	}
	n = d.Int()
	for i := 0; i < n && d.Err() == nil; i++ {
		var ss segSamples
		ss.counter = d.Int()
		ss.cpu = int32(d.I64())
		var err error
		if ss.samples, err = store.View[trace.CounterSample](m, d.Ref()); err != nil {
			return nil, err
		}
		p.samples = append(p.samples, ss)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// installLocked swaps a compacted segment's heap columns for its mmap
// views, in a fresh frozen generation (published snapshots keep the
// heap backing until released). Columns an unspill pulled back to the
// RAM tail meanwhile (nil entries) stay nil; a segment dropped by
// retention while compacting is deleted again.
func (lv *Live) installLocked(seg *spillSeg, m *store.Mapped, vp *segPayload, path string, err error) {
	if lv.frozen == nil {
		if m != nil {
			m.Close()
			os.Remove(path)
		}
		return
	}
	f := lv.frozen.clone()
	f.pending--
	idx := -1
	for i, s := range f.segs {
		if s == seg {
			idx = i
			break
		}
	}
	if err != nil {
		if f.spillErr == "" {
			f.spillErr = err.Error()
		}
		lv.frozen = f
		return
	}
	if idx < 0 {
		// Aged out while compacting: no snapshot references the
		// mapping, unmap and delete the orphan file.
		m.Close()
		os.Remove(path)
		lv.frozen = f
		return
	}
	seg.path = path
	seg.m = m
	for _, sc := range vp.cpus {
		if int(sc.cpu) >= len(f.cpus) {
			continue
		}
		fc := &f.cpus[sc.cpu]
		if sc.states != nil && idx < len(fc.states) && fc.states[idx] != nil {
			fc.states[idx] = sc.states
		}
		if sc.discrete != nil && idx < len(fc.discrete) && fc.discrete[idx] != nil {
			fc.discrete[idx] = sc.discrete
		}
		if sc.comm != nil && idx < len(fc.comm) && fc.comm[idx] != nil {
			fc.comm[idx] = sc.comm
		}
	}
	for _, ss := range vp.samples {
		if ss.counter >= len(f.samples) {
			continue
		}
		rows := f.samples[ss.counter]
		if int(ss.cpu) < len(rows) && idx < len(rows[ss.cpu]) && rows[ss.cpu][idx] != nil && ss.samples != nil {
			rows[ss.cpu][idx] = ss.samples
		}
	}
	lv.frozen = f
}

// applyRetentionLocked drops the oldest spilled segments while the
// byte budget is exceeded or their newest event aged past MaxAge.
// Dropped events leave the trace: logical indices shift, so the
// affected incremental indexes (dominance chains, counter trees, comm
// consumption counts) reset and rebuild over the remaining window at
// the next publish. Published snapshots keep their generation — their
// mappings stay valid after the file unlink until released.
func (lv *Live) applyRetentionLocked() {
	f := lv.frozen
	if f == nil || len(f.segs) == 0 {
		return
	}
	drop := 0
	spilled := f.spilledBytes
	for drop < len(f.segs) {
		seg := f.segs[drop]
		over := lv.ret.MaxBytes > 0 && spilled > lv.ret.MaxBytes
		aged := lv.ret.MaxAge > 0 && lv.spanSet && seg.hasTime &&
			seg.maxTime < lv.spanMax-lv.ret.MaxAge
		if !over && !aged {
			break
		}
		spilled -= seg.bytes
		drop++
	}
	if drop == 0 {
		return
	}
	nf := f.clone()
	for i := 0; i < drop; i++ {
		seg := nf.segs[i]
		nf.droppedSegs++
		nf.droppedBytes += seg.bytes
		if seg.path != "" {
			os.Remove(seg.path)
		}
	}
	nf.segs = nf.segs[drop:]
	nf.spilledBytes = spilled
	droppedComm := false
	for cpu := range nf.cpus {
		fc := &nf.cpus[cpu]
		o := &lv.order[cpu]
		droppedStates := false
		for i := 0; i < drop; i++ {
			if i < len(fc.states) && len(fc.states[i]) > 0 {
				o.nStateF -= len(fc.states[i])
				droppedStates = true
			}
			if i < len(fc.discrete) {
				o.nDiscreteF -= len(fc.discrete[i])
			}
			if i < len(fc.comm) && len(fc.comm[i]) > 0 {
				n := len(fc.comm[i])
				o.nCommF -= n
				if cpu < len(lv.commN) {
					lv.commN[cpu] -= n
				}
				droppedComm = true
			}
		}
		fc.states = dropSegs(fc.states, drop)
		fc.discrete = dropSegs(fc.discrete, drop)
		fc.comm = dropSegs(fc.comm, drop)
		if droppedStates {
			// Logical state indices shifted: the dominance chain's leaf
			// refs are stale. Rebuild over the remaining window.
			lv.doms[cpu] = domChain{}
		}
	}
	if droppedComm {
		// The communication totals included the dropped events; force
		// a rebuild over the retained window at the next publish.
		lv.commTot = nil
	}
	for ci := range nf.samples {
		lc := lv.counters[ci]
		for cpu := range nf.samples[ci] {
			row := nf.samples[ci][cpu]
			removed := 0
			for i := 0; i < drop && i < len(row); i++ {
				removed += len(row[i])
			}
			nf.samples[ci][cpu] = dropSegs(row, drop)
			if removed > 0 && cpu < len(lc.fsamp) {
				lc.fsamp[cpu] -= removed
				lc.trees[cpu], lc.rateTrees[cpu], lc.treeN[cpu] = nil, nil, 0
			}
		}
	}
	lv.frozen = nf
}

// dropSegs removes the first drop per-segment entries of a column
// list, tolerating lists shorter than the segment list (never grown
// past their last freeze).
func dropSegs[T any](lists [][]T, drop int) [][]T {
	if drop >= len(lists) {
		return lists[:0]
	}
	return lists[drop:]
}

// --- unspill: pulling frozen columns back into the RAM tail ---
//
// A family that goes dirty (an out-of-order producer) is repaired at
// snapshot time by sorting the whole array — which requires the whole
// array in RAM. The moment a family transitions to dirty, its frozen
// columns are concatenated back in front of the RAM tail and the
// frozen entries nil out (in a fresh generation); dirty families never
// freeze again, so this happens at most once per family.

func (lv *Live) unspillStatesLocked(cpu int32) {
	o := &lv.order[cpu]
	if o.nStateF == 0 || lv.frozen == nil {
		return
	}
	f := lv.frozen.clone()
	fc := &f.cpus[cpu]
	merged := make([]trace.StateEvent, 0, o.nStateF+len(lv.cpus[cpu].States))
	for si, s := range fc.states {
		if len(s) > 0 {
			merged = append(merged, s...)
			delta := int64(len(s)) * stateEventBytes
			f.segs[si].records -= int64(len(s))
			f.segs[si].bytes -= delta
			f.spilledBytes -= delta
		}
		fc.states[si] = nil
	}
	lv.cpus[cpu].States = append(merged, lv.cpus[cpu].States...)
	o.nStateF = 0
	lv.frozen = f
}

func (lv *Live) unspillDiscreteLocked(cpu int32) {
	o := &lv.order[cpu]
	if o.nDiscreteF == 0 || lv.frozen == nil {
		return
	}
	f := lv.frozen.clone()
	fc := &f.cpus[cpu]
	merged := make([]trace.DiscreteEvent, 0, o.nDiscreteF+len(lv.cpus[cpu].Discrete))
	for si, s := range fc.discrete {
		if len(s) > 0 {
			merged = append(merged, s...)
			delta := int64(len(s)) * discreteEventBytes
			f.segs[si].records -= int64(len(s))
			f.segs[si].bytes -= delta
			f.spilledBytes -= delta
		}
		fc.discrete[si] = nil
	}
	lv.cpus[cpu].Discrete = append(merged, lv.cpus[cpu].Discrete...)
	o.nDiscreteF = 0
	lv.frozen = f
}

func (lv *Live) unspillCommLocked(cpu int32) {
	o := &lv.order[cpu]
	if o.nCommF == 0 || lv.frozen == nil {
		return
	}
	f := lv.frozen.clone()
	fc := &f.cpus[cpu]
	merged := make([]trace.CommEvent, 0, o.nCommF+len(lv.cpus[cpu].Comm))
	for si, s := range fc.comm {
		if len(s) > 0 {
			merged = append(merged, s...)
			delta := int64(len(s)) * commEventBytes
			f.segs[si].records -= int64(len(s))
			f.segs[si].bytes -= delta
			f.spilledBytes -= delta
		}
		fc.comm[si] = nil
	}
	lv.cpus[cpu].Comm = append(merged, lv.cpus[cpu].Comm...)
	o.nCommF = 0
	lv.frozen = f
}

func (lv *Live) unspillSamplesLocked(ci int, cpu int32) {
	lc := lv.counters[ci]
	if int(cpu) >= len(lc.fsamp) || lc.fsamp[cpu] == 0 || lv.frozen == nil ||
		ci >= len(lv.frozen.samples) || int(cpu) >= len(lv.frozen.samples[ci]) {
		return
	}
	f := lv.frozen.clone()
	row := f.samples[ci][cpu]
	merged := make([]trace.CounterSample, 0, lc.fsamp[cpu]+len(lc.c.PerCPU[cpu]))
	for si, s := range row {
		if len(s) > 0 {
			merged = append(merged, s...)
			delta := int64(len(s)) * counterSampleBytes
			f.segs[si].records -= int64(len(s))
			f.segs[si].bytes -= delta
			f.spilledBytes -= delta
		}
		row[si] = nil
	}
	lc.c.PerCPU[cpu] = append(merged, lc.c.PerCPU[cpu]...)
	lc.fsamp[cpu] = 0
	lv.frozen = f
}

// --- logical views for the incremental index extenders ---

// stateWindowLocked gathers the logical state events [from, total) of
// a CPU — frozen columns first, then the RAM tail. Zero-copy while the
// window lies entirely in the tail (the steady state: the extenders
// only ever ask for the newly appended suffix); a drop-triggered
// rebuild re-gathers the remaining frozen window once.
func (lv *Live) stateWindowLocked(cpu, from int) []trace.StateEvent {
	o := &lv.order[cpu]
	tail := lv.cpus[cpu].States
	if from >= o.nStateF {
		return tail[from-o.nStateF:]
	}
	out := make([]trace.StateEvent, 0, o.nStateF+len(tail)-from)
	at := 0
	if lv.frozen != nil && cpu < len(lv.frozen.cpus) {
		for _, s := range lv.frozen.cpus[cpu].states {
			if at+len(s) <= from {
				at += len(s)
				continue
			}
			start := 0
			if from > at {
				start = from - at
			}
			out = append(out, s[start:]...)
			at += len(s)
		}
	}
	return append(out, tail...)
}

// sampleWindowLocked gathers the logical samples [from, total) of a
// (counter, cpu) pair, like stateWindowLocked.
func (lv *Live) sampleWindowLocked(ci int, cpu, from int) []trace.CounterSample {
	lc := lv.counters[ci]
	tail := lc.c.PerCPU[cpu]
	nf := 0
	if cpu < len(lc.fsamp) {
		nf = lc.fsamp[cpu]
	}
	if from >= nf {
		return tail[from-nf:]
	}
	out := make([]trace.CounterSample, 0, nf+len(tail)-from)
	at := 0
	if lv.frozen != nil && ci < len(lv.frozen.samples) && cpu < len(lv.frozen.samples[ci]) {
		for _, s := range lv.frozen.samples[ci][cpu] {
			if at+len(s) <= from {
				at += len(s)
				continue
			}
			start := 0
			if from > at {
				start = from - at
			}
			out = append(out, s[start:]...)
			at += len(s)
		}
	}
	return append(out, tail...)
}

// stateSegViewLocked returns the non-empty state columns of a CPU in
// logical order (frozen segments, then the given RAM tail) with their
// cumulative start offsets, for seeding a snapshot's segmented
// dominance entry.
func (lv *Live) stateSegViewLocked(cpu int, tail []trace.StateEvent) (segs [][]trace.StateEvent, cum []int) {
	at := 0
	if lv.frozen != nil && cpu < len(lv.frozen.cpus) {
		for _, s := range lv.frozen.cpus[cpu].states {
			if len(s) == 0 {
				continue
			}
			segs = append(segs, s)
			cum = append(cum, at)
			at += len(s)
		}
	}
	if len(tail) > 0 {
		segs = append(segs, tail)
		cum = append(cum, at)
	}
	return segs, cum
}

// Window search helpers shared by the stitched accessors (core.go).

func stateWin(t0, t1 trace.Time) func([]trace.StateEvent) (int, int) {
	return func(s []trace.StateEvent) (int, int) {
		lo := sort.Search(len(s), func(i int) bool { return s[i].End > t0 })
		hi := sort.Search(len(s), func(i int) bool { return s[i].Start >= t1 })
		return lo, hi
	}
}

func discreteWin(t0, t1 trace.Time) func([]trace.DiscreteEvent) (int, int) {
	return func(s []trace.DiscreteEvent) (int, int) {
		lo := sort.Search(len(s), func(i int) bool { return s[i].Time >= t0 })
		hi := sort.Search(len(s), func(i int) bool { return s[i].Time >= t1 })
		return lo, hi
	}
}

func commWin(t0, t1 trace.Time) func([]trace.CommEvent) (int, int) {
	return func(s []trace.CommEvent) (int, int) {
		lo := sort.Search(len(s), func(i int) bool { return s[i].Time >= t0 })
		hi := sort.Search(len(s), func(i int) bool { return s[i].Time >= t1 })
		return lo, hi
	}
}

func sampleWin(t0, t1 trace.Time) func([]trace.CounterSample) (int, int) {
	return func(s []trace.CounterSample) (int, int) {
		lo := sort.Search(len(s), func(i int) bool { return s[i].Time >= t0 })
		hi := sort.Search(len(s), func(i int) bool { return s[i].Time >= t1 })
		return lo, hi
	}
}
