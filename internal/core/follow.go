package core

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/openstream/aftermath/internal/trace"
)

// Follower tails a growing trace file into a Live trace: a poll loop
// feeds newly appended records and publishes a snapshot whenever data
// arrived. Unlike a bare Feed loop it owns its resources — Close stops
// the poll goroutine and releases the file handle — and it watches the
// file for truncation: a log-rotated or rewritten trace can never be
// resumed mid-stream (the decoder's offset would land inside different
// bytes), so shrinking below the bytes already consumed surfaces as a
// sticky descriptive ingest error instead of silently decoding
// garbage.
type Follower struct {
	lv   *Live
	path string
	rc   io.ReadCloser
	sr   trace.Decoder

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Follow opens path for live tailing into lv with the native binary
// decoder, performs the initial feed, and starts the poll loop. The
// returned Follower must be closed to release the poll goroutine and
// file handle. Format-detecting callers (the ingest layer) construct
// the decoder themselves and use FollowDecoder.
func Follow(lv *Live, path string, pollEvery time.Duration) (*Follower, error) {
	rc, err := trace.OpenStream(path)
	if err != nil {
		return nil, err
	}
	return FollowDecoder(lv, path, rc, trace.NewStreamReader(rc), pollEvery)
}

// FollowDecoder tails path into lv through a caller-supplied decoder
// reading from rc: the format-neutral follow entry point. The initial
// feed runs synchronously (an error closes rc and fails construction);
// the poll loop then owns rc, and Close releases it.
func FollowDecoder(lv *Live, path string, rc io.ReadCloser, dec trace.Decoder, pollEvery time.Duration) (*Follower, error) {
	if pollEvery <= 0 {
		pollEvery = 500 * time.Millisecond
	}
	f := &Follower{
		lv:   lv,
		path: path,
		rc:   rc,
		sr:   dec,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if _, err := lv.Feed(f.sr); err != nil {
		rc.Close()
		return nil, err
	}
	go f.run(pollEvery)
	return f, nil
}

// Live returns the live trace the follower feeds.
func (f *Follower) Live() *Live { return f.lv }

// run is the poll loop: every tick checks the file for truncation and
// feeds whatever was appended. It exits on the first ingest error
// (sticky on the Live, so /live pollers can tell dead ingest from a
// quiet run) or when Close is called.
func (f *Follower) run(pollEvery time.Duration) {
	defer close(f.done)
	tick := time.NewTicker(pollEvery)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
		}
		if err := f.checkTruncation(); err != nil {
			f.lv.noteErr(err)
			return
		}
		if _, err := f.lv.Feed(f.sr); err != nil {
			// Feed already recorded the sticky error; stop polling.
			// The snapshots published so far keep serving.
			return
		}
	}
}

// checkTruncation stats the trace file and reports an error when it
// shrank below the bytes already consumed plus the buffered partial
// tail — the signature of truncation or rotate-and-rewrite. Plain
// appends only ever grow the file; a stat failure (file deleted) is
// reported the same way.
func (f *Follower) checkTruncation() error {
	info, err := os.Stat(f.path)
	if err != nil {
		return fmt.Errorf("trace file %s: %w (deleted or rotated away while following)", f.path, err)
	}
	have := f.sr.Consumed() + int64(f.sr.Buffered())
	if info.Size() < have {
		return fmt.Errorf(
			"trace file %s truncated while following: size shrank to %d bytes below the %d already read (rotated or rewritten?); restart the follow to pick up the new file",
			f.path, info.Size(), have)
	}
	return nil
}

// Close stops the poll loop, waits for it to exit, closes the trace
// file and shuts down the live trace's background spill workers. Safe
// to call more than once; the error is that of the first close.
func (f *Follower) Close() error {
	f.closeOnce.Do(func() {
		close(f.stop)
		<-f.done
		err := f.rc.Close()
		if lerr := f.lv.Close(); err == nil {
			err = lerr
		}
		f.closeErr = err
	})
	return f.closeErr
}
