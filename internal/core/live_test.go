package core

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"github.com/openstream/aftermath/internal/trace"
)

// liveTestBytes writes a compact trace exercising every record kind,
// including a task whose record arrives after its execution state and
// a counter described after its first samples.
func liveTestBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.WriteTopology(trace.Topology{Name: "live-m", NumNodes: 2, NodeOfCPU: []int32{0, 0, 1, 1}, Distance: []int32{0, 1, 1, 0}}))
	must(w.WriteTaskType(trace.TaskType{ID: 1, Addr: 0x40, Name: "stencil"}))
	must(w.WriteRegion(trace.MemRegion{ID: 1, Addr: 0x1000, Size: 4096, Node: 0}))
	must(w.WriteRegion(trace.MemRegion{ID: 2, Addr: 0x8000, Size: 4096, Node: 1}))
	for i := 0; i < 200; i++ {
		cpu := int32(i % 4)
		t0 := int64(100 * i)
		id := trace.TaskID(i + 1)
		// Every third task's record trails its execution events, so
		// checkpoints can fall between execution and registration.
		if i%3 != 0 {
			must(w.WriteTask(trace.Task{ID: id, Type: 1, Created: t0, CreatorCPU: cpu}))
		}
		must(w.WriteState(trace.StateEvent{CPU: cpu, State: trace.StateTaskExec, Start: t0, End: t0 + 80, Task: id}))
		must(w.WriteState(trace.StateEvent{CPU: cpu, State: trace.StateIdle, Start: t0 + 80, End: t0 + 100}))
		must(w.WriteComm(trace.CommEvent{Kind: trace.CommRead, CPU: cpu, SrcCPU: -1, Time: t0, Task: id, Addr: 0x1000, Size: 64}))
		must(w.WriteSample(trace.CounterSample{CPU: cpu, Counter: 9, Time: t0, Value: int64(i) * 7}))
		if i%3 == 0 {
			must(w.WriteTask(trace.Task{ID: id, Type: 1, Created: t0, CreatorCPU: cpu}))
		}
	}
	must(w.WriteCounterDesc(trace.CounterDesc{ID: 9, Name: "cycles", Monotonic: true}))
	must(w.Flush())
	return buf.Bytes()
}

// compareTrace asserts that every exported part of two traces is
// deeply equal.
func compareTrace(t *testing.T, ctx string, got, want *Trace) {
	t.Helper()
	if !reflect.DeepEqual(got.Topology, want.Topology) {
		t.Errorf("%s: topology differs", ctx)
	}
	if got.Span != want.Span {
		t.Errorf("%s: span = %+v, want %+v", ctx, got.Span, want.Span)
	}
	if !reflect.DeepEqual(got.CPUs, want.CPUs) {
		t.Errorf("%s: per-CPU event arrays differ", ctx)
	}
	if !reflect.DeepEqual(got.Types, want.Types) {
		t.Errorf("%s: type tables differ", ctx)
	}
	if !reflect.DeepEqual(got.Tasks, want.Tasks) {
		t.Errorf("%s: task tables differ", ctx)
	}
	if !reflect.DeepEqual(got.Regions, want.Regions) {
		t.Errorf("%s: region tables differ", ctx)
	}
	if len(got.Counters) != len(want.Counters) {
		t.Fatalf("%s: %d counters, want %d", ctx, len(got.Counters), len(want.Counters))
	}
	for i := range got.Counters {
		if got.Counters[i].Desc != want.Counters[i].Desc {
			t.Errorf("%s: counter %d desc differs", ctx, i)
		}
		if !reflect.DeepEqual(got.Counters[i].PerCPU, want.Counters[i].PerCPU) {
			t.Errorf("%s: counter %d samples differ", ctx, i)
		}
	}
}

// TestLiveSnapshotEqualsLoad: at every record-aligned checkpoint, the
// published snapshot equals a cold load of the same stream prefix,
// and its counter index (seeded via mmtree append mode) answers
// queries identically to a freshly built one.
func TestLiveSnapshotEqualsLoad(t *testing.T) {
	data := liveTestBytes(t)
	g := &limitedByteReader{data: data}
	sr := trace.NewStreamReader(g)
	lv := NewLive()
	step := len(data)/7 + 1
	for g.limit < len(data) {
		g.limit += step
		if g.limit > len(data) {
			g.limit = len(data)
		}
		if _, err := lv.Feed(sr); err != nil {
			t.Fatal(err)
		}
		snap, _ := lv.Snapshot()
		off := sr.Consumed()
		if off == 0 {
			continue
		}
		cold, err := FromReader(bytes.NewReader(data[:off]))
		if err != nil {
			t.Fatalf("cold load of %d-byte prefix: %v", off, err)
		}
		compareTrace(t, "prefix", snap, cold)
		// The seeded index must agree with the lazily built one.
		if len(snap.Counters) > 0 {
			c, cc := snap.Counters[0], cold.Counters[0]
			for cpu := range c.PerCPU {
				gt := snap.CounterIndex().Tree(c, int32(cpu))
				wt := cold.CounterIndex().Tree(cc, int32(cpu))
				if gt.Len() != wt.Len() {
					t.Fatalf("seeded tree Len %d, want %d", gt.Len(), wt.Len())
				}
				gmn, gmx, gok := gt.MinMax(snap.Span.Start, snap.Span.End)
				wmn, wmx, wok := wt.MinMax(cold.Span.Start, cold.Span.End)
				if gmn != wmn || gmx != wmx || gok != wok {
					t.Fatalf("seeded tree MinMax differs on cpu %d", cpu)
				}
				grt := snap.CounterIndex().RateTree(c, int32(cpu))
				wrt := cold.CounterIndex().RateTree(cc, int32(cpu))
				if grt.Len() != wrt.Len() {
					t.Fatalf("seeded rate tree Len %d, want %d", grt.Len(), wrt.Len())
				}
			}
		}
	}
	if err := sr.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveEpochAdvances: epochs increment only when records actually
// arrive, and each snapshot stays frozen once published.
func TestLiveEpochAdvances(t *testing.T) {
	data := liveTestBytes(t)
	g := &limitedByteReader{data: data}
	sr := trace.NewStreamReader(g)
	lv := NewLive()
	if _, epoch := lv.Snapshot(); epoch != 0 {
		t.Fatalf("initial epoch = %d, want 0", epoch)
	}
	if n, err := lv.Feed(sr); n != 0 || err != nil {
		t.Fatalf("Feed on empty stream = (%d, %v)", n, err)
	}
	if _, epoch := lv.Snapshot(); epoch != 0 {
		t.Fatalf("epoch advanced without data")
	}
	g.limit = len(data) / 2
	if _, err := lv.Feed(sr); err != nil {
		t.Fatal(err)
	}
	first, epoch1 := lv.Snapshot()
	if epoch1 != 1 {
		t.Fatalf("epoch after first feed = %d, want 1", epoch1)
	}
	tasksBefore := len(first.Tasks)
	spanBefore := first.Span
	g.limit = len(data)
	if _, err := lv.Feed(sr); err != nil {
		t.Fatal(err)
	}
	_, epoch2 := lv.Snapshot()
	if epoch2 != 2 {
		t.Fatalf("epoch after second feed = %d, want 2", epoch2)
	}
	if len(first.Tasks) != tasksBefore || first.Span != spanBefore {
		t.Fatal("published snapshot mutated by a later append")
	}
}

// TestLiveOutOfOrderProducer: a producer that violates per-CPU order
// is repaired per snapshot exactly like a batch load repairs it.
func TestLiveOutOfOrderProducer(t *testing.T) {
	mk := func() *trace.RecordBatch {
		b := &trace.RecordBatch{MaxCPU: 1}
		for i := 0; i < 50; i++ {
			// Descending starts on CPU 0; samples descending on CPU 1.
			t0 := int64(1000 - 10*i)
			b.States = append(b.States, trace.StateEvent{CPU: 0, State: trace.StateTaskExec, Start: t0, End: t0 + 5, Task: trace.TaskID(i + 1)})
			b.Samples = append(b.Samples, trace.CounterSample{CPU: 1, Counter: 2, Time: t0, Value: int64(i)})
		}
		b.CounterIDs = []trace.CounterID{2}
		return b
	}
	lv := NewLive()
	if err := lv.Append(mk()); err != nil {
		t.Fatal(err)
	}
	snap, _ := lv.Publish()

	// The Writer enforces ordering, so a byte-level reference load is
	// not constructible here; check the repaired invariants directly.
	states := snap.CPUs[0].States
	for i := 1; i < len(states); i++ {
		if states[i].Start < states[i-1].Start {
			t.Fatal("snapshot states not sorted after out-of-order append")
		}
	}
	samples := snap.Counters[0].PerCPU[1]
	for i := 1; i < len(samples); i++ {
		if samples[i].Time < samples[i-1].Time {
			t.Fatal("snapshot samples not sorted after out-of-order append")
		}
	}
	// Execution placement must reflect the sorted order (last writer
	// wins per task; every task has one exec here).
	for _, task := range snap.Tasks {
		if task.ExecCPU != 0 {
			t.Fatalf("task %d placed on cpu %d", task.ID, task.ExecCPU)
		}
	}
	if snap.Span.Start != 510 || snap.Span.End != 1005 {
		t.Fatalf("span = %+v, want [510,1005]", snap.Span)
	}
}

// limitedByteReader mirrors the trace package's test reader: data up
// to limit, io.EOF beyond.
type limitedByteReader struct {
	data  []byte
	limit int
	off   int
}

func (g *limitedByteReader) Read(p []byte) (int, error) {
	if g.off >= g.limit {
		return 0, io.EOF
	}
	n := copy(p, g.data[g.off:g.limit])
	g.off += n
	return n, nil
}
