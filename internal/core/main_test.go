package core

import (
	"testing"

	"github.com/openstream/aftermath/internal/leakcheck"
)

// TestMain guards the package against leaked goroutines: live ingest
// spawns background spill compactions and watch notifiers, and a test
// that leaks one poisons every later test in the binary.
func TestMain(m *testing.M) { leakcheck.Main(m) }
