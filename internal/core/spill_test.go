package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/openstream/aftermath/internal/store"
	"github.com/openstream/aftermath/internal/trace"
)

// spillBatch builds one ordered batch: count states, comm events and
// samples per CPU, starting at time base.
func spillBatch(nCPU, count int, base int64) *trace.RecordBatch {
	b := &trace.RecordBatch{MaxCPU: int32(nCPU - 1)}
	for cpu := int32(0); cpu < int32(nCPU); cpu++ {
		for i := 0; i < count; i++ {
			t0 := base + int64(100*i)
			b.States = append(b.States, trace.StateEvent{CPU: cpu, State: trace.StateTaskExec, Start: t0, End: t0 + 60, Task: trace.TaskID(i + 1)})
			b.Comms = append(b.Comms, trace.CommEvent{Kind: trace.CommRead, CPU: cpu, SrcCPU: -1, Time: t0, Task: trace.TaskID(i + 1), Addr: 0x1000, Size: 64})
			b.Samples = append(b.Samples, trace.CounterSample{CPU: cpu, Counter: 7, Time: t0, Value: base + int64(i)})
		}
	}
	b.CounterIDs = []trace.CounterID{7}
	return b
}

// publish appends a batch and publishes, failing the test on error.
func publish(t *testing.T, lv *Live, b *trace.RecordBatch) *Trace {
	t.Helper()
	if err := lv.Append(b); err != nil {
		t.Fatal(err)
	}
	snap, _ := lv.Publish()
	return snap
}

// assertSameEvents compares a possibly-spilled snapshot against an
// all-in-RAM reference through the stitched accessors.
func assertSameEvents(t *testing.T, ctx string, got, want *Trace) {
	t.Helper()
	const lo, hi = int64(-1) << 62, int64(1) << 62
	if got.Span != want.Span {
		t.Fatalf("%s: span = %+v, want %+v", ctx, got.Span, want.Span)
	}
	for cpu := int32(0); int(cpu) < want.NumCPUs(); cpu++ {
		gs, ws := got.StatesIn(cpu, lo, hi), want.StatesIn(cpu, lo, hi)
		if len(gs) != len(ws) {
			t.Fatalf("%s: cpu %d has %d states, want %d", ctx, cpu, len(gs), len(ws))
		}
		for i := range gs {
			if gs[i] != ws[i] {
				t.Fatalf("%s: cpu %d state %d = %+v, want %+v", ctx, cpu, i, gs[i], ws[i])
			}
		}
		gc, wc := got.CommIn(cpu, lo, hi), want.CommIn(cpu, lo, hi)
		if len(gc) != len(wc) {
			t.Fatalf("%s: cpu %d has %d comm events, want %d", ctx, cpu, len(gc), len(wc))
		}
		for i := range gc {
			if gc[i] != wc[i] {
				t.Fatalf("%s: cpu %d comm %d differs", ctx, cpu, i)
			}
		}
	}
	if len(got.Counters) != len(want.Counters) {
		t.Fatalf("%s: %d counters, want %d", ctx, len(got.Counters), len(want.Counters))
	}
	for i := range got.Counters {
		for cpu := range want.Counters[i].PerCPU {
			gs := got.Counters[i].Samples(int32(cpu))
			ws := want.Counters[i].Samples(int32(cpu))
			if len(gs) != len(ws) {
				t.Fatalf("%s: counter %d cpu %d has %d samples, want %d", ctx, i, cpu, len(gs), len(ws))
			}
			for j := range gs {
				if gs[j] != ws[j] {
					t.Fatalf("%s: counter %d cpu %d sample %d differs", ctx, i, cpu, j)
				}
			}
		}
	}
}

// TestSpillSyncSegments: with a 1-byte tail budget and synchronous
// compaction every publish freezes the clean tails to a segment file,
// and the stitched snapshot stays identical to an unspilled Live fed
// the same batches.
func TestSpillSyncSegments(t *testing.T) {
	dir := t.TempDir()
	lv := NewLive()
	lv.SetRetention(RetentionPolicy{Dir: dir, SpillBytes: 1, Sync: true})
	defer lv.Close()
	ref := NewLive()

	var snap *Trace
	for k := 0; k < 5; k++ {
		base := int64(10_000 * k)
		snap = publish(t, lv, spillBatch(2, 20, base))
		publish(t, ref, spillBatch(2, 20, base))
	}
	// Spilling runs after each publish stores its snapshot, so the last
	// segment becomes visible on the next publish.
	snap, _ = lv.Publish()
	want, _ := ref.Snapshot()
	assertSameEvents(t, "spilled vs RAM", snap, want)

	st, ok := snap.SpillStats()
	if !ok || st.Segments == 0 {
		t.Fatalf("no segments spilled: %+v ok %v", st, ok)
	}
	if st.Err != "" {
		t.Fatalf("compaction error: %s", st.Err)
	}
	if st.Pending != 0 {
		t.Fatalf("%d segments pending under Sync", st.Pending)
	}
	if st.SpilledBytes <= 0 {
		t.Fatalf("SpilledBytes = %d, want > 0", st.SpilledBytes)
	}
	files, err := filepath.Glob(filepath.Join(dir, "seg-*.atms"))
	if err != nil || len(files) != st.Segments {
		t.Fatalf("%d segment files on disk (err %v), stats say %d", len(files), err, st.Segments)
	}
	ge, gsm := snap.EventCounts()
	we, wsm := want.EventCounts()
	if ge != we || gsm != wsm {
		t.Fatalf("EventCounts (%d, %d), want (%d, %d)", ge, gsm, we, wsm)
	}
}

// TestSpillBackgroundCompaction: the default asynchronous path installs
// mmap-backed columns without changing what readers see; Close waits
// for in-flight compactions.
func TestSpillBackgroundCompaction(t *testing.T) {
	lv := NewLive()
	lv.SetRetention(RetentionPolicy{Dir: t.TempDir(), SpillBytes: 1})
	ref := NewLive()
	var snap *Trace
	for k := 0; k < 5; k++ {
		base := int64(10_000 * k)
		snap = publish(t, lv, spillBatch(2, 20, base))
		publish(t, ref, spillBatch(2, 20, base))
	}
	if err := lv.Close(); err != nil {
		t.Fatal(err)
	}
	// The last published snapshot keeps working after Close (its
	// columns are heap slices or live mmaps, never freed under it).
	want, _ := ref.Snapshot()
	assertSameEvents(t, "pre-close snapshot", snap, want)

	// A post-close publish observes every install: nothing pending.
	final, _ := lv.Publish()
	assertSameEvents(t, "post-close snapshot", final, want)
	st, ok := final.SpillStats()
	if !ok || st.Segments == 0 {
		t.Fatalf("no segments spilled: %+v ok %v", st, ok)
	}
	if st.Pending != 0 {
		t.Fatalf("%d segments pending after Close", st.Pending)
	}
	if st.Err != "" {
		t.Fatalf("compaction error: %s", st.Err)
	}
}

// TestSpillUnspillOnDirtyProducer: an out-of-order event after a spill
// pulls the affected family's frozen columns back into RAM so the
// per-snapshot sort repair sees the full array; the result matches an
// unspilled Live fed the same disordered batches.
func TestSpillUnspillOnDirtyProducer(t *testing.T) {
	lv := NewLive()
	lv.SetRetention(RetentionPolicy{Dir: t.TempDir(), SpillBytes: 1, Sync: true})
	defer lv.Close()
	ref := NewLive()

	publish(t, lv, spillBatch(2, 20, 0))
	publish(t, ref, spillBatch(2, 20, 0))
	// Second publish so the first segment is frozen and installed.
	publish(t, lv, spillBatch(2, 20, 10_000))
	publish(t, ref, spillBatch(2, 20, 10_000))
	if st, ok := mustStats(t, lv); !ok || st.Segments == 0 {
		t.Fatalf("precondition: nothing spilled (%+v)", st)
	}

	// Now a batch whose events land before everything spilled.
	late := &trace.RecordBatch{MaxCPU: 1}
	late.States = append(late.States, trace.StateEvent{CPU: 0, State: trace.StateIdle, Start: -500, End: -400})
	late.Comms = append(late.Comms, trace.CommEvent{Kind: trace.CommWrite, CPU: 0, SrcCPU: -1, Time: -450, Task: 1, Addr: 0x2000, Size: 8})
	late.Samples = append(late.Samples, trace.CounterSample{CPU: 0, Counter: 7, Time: -450, Value: 1})
	late.CounterIDs = []trace.CounterID{7}
	snap := publish(t, lv, late)
	publish(t, ref, late)

	want, _ := ref.Snapshot()
	assertSameEvents(t, "after out-of-order append", snap, want)
	// CPU 0's families unspilled; CPU 1 may still hold segments. Either
	// way another in-order round keeps matching.
	snap = publish(t, lv, spillBatch(2, 20, 20_000))
	publish(t, ref, spillBatch(2, 20, 20_000))
	want, _ = ref.Snapshot()
	assertSameEvents(t, "after recovery round", snap, want)
}

func mustStats(t *testing.T, lv *Live) (SpillStats, bool) {
	t.Helper()
	snap, _ := lv.Snapshot()
	return snap.SpillStats()
}

// TestSpillRetentionDropsOldest: a byte budget ages out the oldest
// segments — their events leave the trace, their files leave the disk,
// and queries over the remaining window keep matching a reference
// trace truncated to the same events.
func TestSpillRetentionDropsOldest(t *testing.T) {
	dir := t.TempDir()
	lv := NewLive()
	// Budget roughly two segments of the batch size used below.
	const perBatchBytes = 2 * 20 * (stateEventBytes + commEventBytes + counterSampleBytes)
	lv.SetRetention(RetentionPolicy{Dir: dir, SpillBytes: 1, MaxBytes: 2 * perBatchBytes, Sync: true})
	defer lv.Close()

	var snap *Trace
	const rounds = 8
	for k := 0; k < rounds; k++ {
		snap = publish(t, lv, spillBatch(2, 20, int64(10_000*k)))
	}
	st, ok := snap.SpillStats()
	if !ok {
		t.Fatal("no spill state on snapshot")
	}
	if st.DroppedSegs == 0 || st.DroppedBytes == 0 {
		t.Fatalf("nothing dropped under a %d-byte budget: %+v", int64(2*perBatchBytes), st)
	}
	if st.SpilledBytes > 2*perBatchBytes {
		t.Fatalf("spilled bytes %d exceed the %d budget", st.SpilledBytes, int64(2*perBatchBytes))
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.atms"))
	if len(files) != st.Segments {
		t.Fatalf("%d segment files on disk, stats say %d (dropped files must be removed)", len(files), st.Segments)
	}

	// Events: the trace must have lost exactly the oldest ones. The
	// remaining states are still sorted and end at the newest batch.
	events, _ := snap.EventCounts()
	total := int64(rounds * 2 * 20 * 2) // states + comm per round
	if events >= total {
		t.Fatalf("EventCounts %d did not shrink below the %d ingested", events, total)
	}
	for cpu := int32(0); cpu < 2; cpu++ {
		states := snap.StatesIn(cpu, -1<<62, 1<<62)
		if len(states) == 0 {
			t.Fatalf("cpu %d lost all states", cpu)
		}
		for i := 1; i < len(states); i++ {
			if states[i].Start < states[i-1].Start {
				t.Fatalf("cpu %d states disordered after drop", cpu)
			}
		}
		if got := states[len(states)-1].Start; got != int64(10_000*(rounds-1)+100*19) {
			t.Fatalf("cpu %d newest state starts at %d", cpu, got)
		}
	}
	// Dominance and counter queries over the retained window still
	// answer (rebuilt indexes over the shifted logical coordinates).
	e := snap.DomIndex().CPU(snap, 0)
	if _, _, indexed := e.DominantState(snap.Span.Start, snap.Span.End); !indexed {
		t.Fatal("dominance index unavailable after retention drop")
	}
	if v, ok := snap.Counters[0].ValueAt(0, int64(10_000*(rounds-1))); !ok || v != int64(10_000*(rounds-1)) {
		t.Fatalf("ValueAt over retained window = (%d, %v)", v, ok)
	}
}

// TestSpillMaxAgeDrops: an age budget drops segments whose newest
// event trails the span end by more than MaxAge.
func TestSpillMaxAgeDrops(t *testing.T) {
	lv := NewLive()
	lv.SetRetention(RetentionPolicy{Dir: t.TempDir(), SpillBytes: 1, MaxAge: 15_000, Sync: true})
	defer lv.Close()
	var snap *Trace
	for k := 0; k < 6; k++ {
		snap = publish(t, lv, spillBatch(1, 20, int64(10_000*k)))
	}
	st, ok := snap.SpillStats()
	if !ok || st.DroppedSegs == 0 {
		t.Fatalf("age budget dropped nothing: %+v ok %v", st, ok)
	}
	states := snap.StatesIn(0, -1<<62, 1<<62)
	if len(states) == 0 {
		t.Fatal("all states dropped")
	}
	// Every surviving segment's newest event is within MaxAge of the
	// span end; the oldest retained state can trail further only by
	// being in a segment that still holds younger events.
	if oldest := states[0].Start; oldest < snap.Span.End-2*15_000 {
		t.Fatalf("oldest retained state %d is far outside the age budget (span end %d)", oldest, snap.Span.End)
	}
}

// TestSpillErrSticky: a compaction failure (unwritable directory)
// surfaces as a sticky error on SpillStats while the data stays in RAM
// and snapshots stay correct.
func TestSpillErrSticky(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "missing", "nested")
	lv := NewLive()
	lv.SetRetention(RetentionPolicy{Dir: dir, SpillBytes: 1, Sync: true})
	defer lv.Close()
	ref := NewLive()
	var snap *Trace
	for k := 0; k < 3; k++ {
		snap = publish(t, lv, spillBatch(2, 20, int64(10_000*k)))
		publish(t, ref, spillBatch(2, 20, int64(10_000*k)))
	}
	st, ok := snap.SpillStats()
	if !ok || st.Err == "" {
		t.Fatalf("write failure not surfaced: %+v ok %v", st, ok)
	}
	if !strings.Contains(st.Err, "missing") && !strings.Contains(st.Err, "no such") {
		t.Logf("error text: %s", st.Err)
	}
	want, _ := ref.Snapshot()
	assertSameEvents(t, "after failed compaction", snap, want)
}

// TestSegmentFileRoundTrip exercises writeSegment/readSegment directly:
// columns written, mapped back, and validated against the originals.
func TestSegmentFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := &segPayload{}
	for cpu := int32(0); cpu < 3; cpu++ {
		sc := segCPU{cpu: cpu}
		for i := 0; i < 10+int(cpu); i++ {
			t0 := int64(100 * i)
			sc.states = append(sc.states, trace.StateEvent{CPU: cpu, State: trace.StateIdle, Start: t0, End: t0 + 50})
			sc.comm = append(sc.comm, trace.CommEvent{Kind: trace.CommRead, CPU: cpu, SrcCPU: -1, Time: t0, Size: 8})
		}
		p.cpus = append(p.cpus, sc)
	}
	p.samples = append(p.samples, segSamples{counter: 0, cpu: 1, samples: []trace.CounterSample{{CPU: 1, Counter: 7, Time: 5, Value: 9}}})

	m, vp, path, err := writeSegment(dir, 42, p)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if filepath.Base(path) != "seg-000042.atms" {
		t.Fatalf("segment path %q", path)
	}
	if len(vp.cpus) != len(p.cpus) || len(vp.samples) != 1 {
		t.Fatalf("view shape: %d cpus, %d sample rows", len(vp.cpus), len(vp.samples))
	}
	for i, sc := range vp.cpus {
		if sc.cpu != p.cpus[i].cpu || len(sc.states) != len(p.cpus[i].states) {
			t.Fatalf("cpu row %d mismatch", i)
		}
		for j := range sc.states {
			if sc.states[j] != p.cpus[i].states[j] {
				t.Fatalf("cpu %d state %d differs after round trip", i, j)
			}
		}
		for j := range sc.comm {
			if sc.comm[j] != p.cpus[i].comm[j] {
				t.Fatalf("cpu %d comm %d differs after round trip", i, j)
			}
		}
	}
	if vp.samples[0].samples[0] != p.samples[0].samples[0] {
		t.Fatal("sample row differs after round trip")
	}

	// A corrupted layout hash must refuse to load.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.atms")
	// The layout hash lives in the meta section; flipping a bit in the
	// last byte of the file corrupts meta (it is written after the
	// columns).
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if m2, err := openSegment(bad); err == nil {
		m2.Close()
		t.Fatal("corrupted segment loaded without error")
	}
}

// openSegment maps a segment file and validates it via readSegment.
func openSegment(path string) (*store.Mapped, error) {
	m, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	if _, err := readSegment(m); err != nil {
		m.Close()
		return nil, fmt.Errorf("readSegment: %w", err)
	}
	return m, nil
}

// TestSpillSweepStaleFiles: enabling retention on a reused spill
// directory removes debris of a previous process — segment files this
// trace cannot adopt and tmp files of a compaction killed mid-write —
// while leaving unrelated files alone, and fresh segments write
// normally afterwards.
func TestSpillSweepStaleFiles(t *testing.T) {
	dir := t.TempDir()
	stale := []string{"seg-000000.atms", "seg-000123.atms.tmp4242"}
	for _, n := range append([]string{"keep.txt"}, stale...) {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLive()
	lv.SetRetention(RetentionPolicy{Dir: dir, SpillBytes: 1, Sync: true})
	defer lv.Close()
	for _, n := range stale {
		if _, err := os.Stat(filepath.Join(dir, n)); !os.IsNotExist(err) {
			t.Fatalf("stale %s survived enabling retention (stat err %v)", n, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.txt")); err != nil {
		t.Fatalf("unrelated file swept: %v", err)
	}
	// Re-installing the policy must not sweep this trace's own segments.
	publish(t, lv, spillBatch(2, 20, 0))
	lv.Publish()
	lv.SetRetention(RetentionPolicy{Dir: dir, SpillBytes: 1, Sync: true})
	files, err := filepath.Glob(filepath.Join(dir, "seg-*.atms"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no segment files after sweep + spill (err %v)", err)
	}
}
