package core

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"github.com/openstream/aftermath/internal/apps"
	"github.com/openstream/aftermath/internal/openstream"
	"github.com/openstream/aftermath/internal/topology"
	"github.com/openstream/aftermath/internal/trace"
)

// seidelStream simulates a scaled seidel run and returns the raw
// trace bytes — a realistic stream with every record family.
func seidelStream(tb testing.TB, blocks, iters int) []byte {
	tb.Helper()
	p, err := apps.BuildSeidel(apps.ScaledSeidelConfig(blocks, iters))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if _, err := openstream.Run(p, openstream.DefaultConfig(topology.Small(2, 4)), w); err != nil {
		tb.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// equalTraces compares every externally observable part of two loaded
// traces.
func equalTraces(t *testing.T, want, got *Trace, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Topology, got.Topology) {
		t.Fatalf("%s: topology differs", label)
	}
	if !reflect.DeepEqual(want.CPUs, got.CPUs) {
		if len(want.CPUs) != len(got.CPUs) {
			t.Fatalf("%s: CPUs = %d, want %d", label, len(got.CPUs), len(want.CPUs))
		}
		for i := range want.CPUs {
			if !reflect.DeepEqual(want.CPUs[i], got.CPUs[i]) {
				t.Fatalf("%s: CPU %d event arrays differ (states %d/%d, discrete %d/%d, comm %d/%d)",
					label, i,
					len(got.CPUs[i].States), len(want.CPUs[i].States),
					len(got.CPUs[i].Discrete), len(want.CPUs[i].Discrete),
					len(got.CPUs[i].Comm), len(want.CPUs[i].Comm))
			}
		}
	}
	if !reflect.DeepEqual(want.Types, got.Types) {
		t.Fatalf("%s: types differ", label)
	}
	if !reflect.DeepEqual(want.Tasks, got.Tasks) {
		t.Fatalf("%s: tasks differ", label)
	}
	if len(want.Counters) != len(got.Counters) {
		t.Fatalf("%s: counters = %d, want %d", label, len(got.Counters), len(want.Counters))
	}
	for i := range want.Counters {
		if want.Counters[i].Desc != got.Counters[i].Desc {
			t.Fatalf("%s: counter %d desc = %+v, want %+v", label, i, got.Counters[i].Desc, want.Counters[i].Desc)
		}
		if !reflect.DeepEqual(want.Counters[i].PerCPU, got.Counters[i].PerCPU) {
			t.Fatalf("%s: counter %d samples differ", label, i)
		}
	}
	if !reflect.DeepEqual(want.Regions, got.Regions) {
		t.Fatalf("%s: regions differ", label)
	}
	if want.Span != got.Span {
		t.Fatalf("%s: span = %+v, want %+v", label, got.Span, want.Span)
	}
	if !reflect.DeepEqual(want.typeByID, got.typeByID) ||
		!reflect.DeepEqual(want.taskByID, got.taskByID) ||
		!reflect.DeepEqual(want.counterByID, got.counterByID) ||
		!reflect.DeepEqual(want.counterByName, got.counterByName) {
		t.Fatalf("%s: lookup maps differ", label)
	}
}

// TestLoadParallelMatchesSequential proves the parallel ingest
// pipeline builds exactly the trace the sequential loader builds.
func TestLoadParallelMatchesSequential(t *testing.T) {
	data := seidelStream(t, 6, 4)
	want, err := fromReaderSeq(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		got, err := fromReader(bytes.NewReader(data), workers)
		if err != nil {
			t.Fatalf("fromReader(workers=%d): %v", workers, err)
		}
		equalTraces(t, want, got, "seidel/workers="+itoa(workers))
	}
}

// TestLoadParallelEdgeCases loads handcrafted streams exercising the
// tolerance paths: no topology record, out-of-order producers,
// sample-only counters, and tasks synthesized from execution states.
func TestLoadParallelEdgeCases(t *testing.T) {
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The Writer enforces per-CPU order, so build an out-of-order
	// stream by splicing two valid streams: the second stream's
	// records rewind time on CPU 2 and counter 9. Also exercised: no
	// topology record, a task (77) without a task record, and a
	// counter (9) with samples but no description.
	var first, second, empty bytes.Buffer
	w := trace.NewWriter(&first)
	must(w.WriteState(trace.StateEvent{CPU: 2, State: trace.StateTaskExec, Start: 500, End: 600, Task: 77}))
	must(w.WriteSample(trace.CounterSample{CPU: 5, Counter: 9, Time: 700, Value: 3}))
	must(w.Flush())
	w = trace.NewWriter(&second)
	must(w.WriteState(trace.StateEvent{CPU: 2, State: trace.StateIdle, Start: 0, End: 500}))
	must(w.WriteState(trace.StateEvent{CPU: 0, State: trace.StateIdle, Start: 10, End: 610}))
	must(w.WriteSample(trace.CounterSample{CPU: 5, Counter: 9, Time: 20, Value: 1}))
	must(w.Flush())
	must(trace.NewWriter(&empty).Flush())
	data := append(first.Bytes(), second.Bytes()[empty.Len():]...)

	want, err := fromReaderSeq(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if want.NumCPUs() != 6 {
		t.Fatalf("NumCPUs = %d, want 6 (sample on CPU 5)", want.NumCPUs())
	}
	if _, ok := want.TaskByID(77); !ok {
		t.Fatal("task 77 not synthesized")
	}
	if want.Span != (Interval{Start: 0, End: 700}) {
		t.Fatalf("span = %+v", want.Span)
	}
	for _, workers := range []int{2, 8} {
		got, err := fromReader(bytes.NewReader(data), workers)
		if err != nil {
			t.Fatalf("fromReader(workers=%d): %v", workers, err)
		}
		equalTraces(t, want, got, "edge/workers="+itoa(workers))
	}
}

// TestLoadNegativeCPU: both load paths must reject a corrupt record
// with a negative CPU id with an error, not a panic.
func TestLoadNegativeCPU(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if err := w.WriteState(trace.StateEvent{CPU: -1, State: trace.StateIdle, Start: 0, End: 10}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := fromReaderSeq(bytes.NewReader(data)); err == nil {
		t.Error("sequential load accepted negative CPU")
	}
	if _, err := fromReader(bytes.NewReader(data), 4); err == nil {
		t.Error("parallel load accepted negative CPU")
	}
}

// TestCounterByNameIndexed checks the name index against the linear
// scan semantics (first counter with the name wins).
func TestCounterByNameIndexed(t *testing.T) {
	tr := buildTestTrace(t)
	c, ok := tr.CounterByName("ctr")
	if !ok || c.Desc.ID != 1 {
		t.Fatalf("CounterByName(ctr) = %v, %v", c, ok)
	}
	if _, ok := tr.CounterByName("missing"); ok {
		t.Fatal("found nonexistent counter")
	}
	// Hand-built traces (no load-time index) fall back to scanning.
	manual := &Trace{Counters: []*Counter{{Desc: trace.CounterDesc{ID: 4, Name: "x"}}}}
	if c, ok := manual.CounterByName("x"); !ok || c.Desc.ID != 4 {
		t.Fatal("scan fallback broken")
	}
}

// TestTaskCommShared checks the pre-sized/shared-slice TaskComm
// contract.
func TestTaskCommShared(t *testing.T) {
	tr := buildTestTrace(t)
	task, ok := tr.TaskByID(10)
	if !ok {
		t.Fatal("task 10 missing")
	}
	evs := tr.TaskComm(task)
	if len(evs) != 2 {
		t.Fatalf("TaskComm = %d events, want 2", len(evs))
	}
	// Task 11 executes but has no communication: the result must be
	// the shared empty slice, not a fresh allocation.
	t11, _ := tr.TaskByID(11)
	if got := tr.TaskComm(t11); len(got) != 0 || got == nil {
		t.Fatalf("TaskComm(no comm) = %v, want shared empty slice", got)
	}
}

// TestCounterIndexConcurrent hammers the shared per-trace counter
// index from many goroutines; run under -race this proves the
// build-once guarantee.
func TestCounterIndexConcurrent(t *testing.T) {
	tr := buildTestTrace(t)
	c, ok := tr.CounterByName("ctr")
	if !ok {
		t.Fatal("counter missing")
	}
	var wg sync.WaitGroup
	trees := make([]interface{}, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ci := tr.CounterIndex()
			trees[i] = ci.Tree(c, 0)
			ci.RateTree(c, 0)
		}(i)
	}
	wg.Wait()
	for i := 1; i < 16; i++ {
		if trees[i] != trees[0] {
			t.Fatal("concurrent callers saw different trees")
		}
	}
	if tr.BuildCounterIndex(4) != tr.CounterIndex() {
		t.Fatal("BuildCounterIndex returned a different index")
	}
}

// BenchmarkFromReaderWorkers measures the ingest pipeline at explicit
// worker counts, independent of GOMAXPROCS, over a larger seidel
// trace. workers=1 is the sequential reference.
func BenchmarkFromReaderWorkers(b *testing.B) {
	data := seidelStream(b, 16, 8)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := fromReader(bytes.NewReader(data), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}
