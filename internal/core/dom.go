package core

import (
	"sort"
	"sync"

	"github.com/openstream/aftermath/internal/mragg"
	"github.com/openstream/aftermath/internal/trace"
)

// DomIndex holds the multi-resolution dominance pyramids over each
// CPU's state intervals (internal/mragg) — the state-interval
// counterpart of the counter min/max tree index. It answers the
// renderer's per-pixel questions ("which state/task-execution
// interval covers the largest part of this pixel?") and the derived
// metrics' window sums ("how long was this CPU in state s during
// this window?") in O(log events) instead of scanning every
// overlapping event, with answers exactly equal to the sequential
// scans they replace.
//
// Safe for concurrent use: each CPU's pyramid is built exactly once,
// on first request, and different CPUs build in parallel. Batch loads
// build every CPU eagerly at index time; live snapshots are seeded
// with incrementally extended pyramids (mragg append mode). A CPU
// whose state intervals violate the format's disjoint-sorted
// guarantee gets no pyramid — queries then report unindexed and
// callers fall back to the plain event scan, so malformed traces
// degrade in speed, never in correctness.
//
// CPU resolves one CPU's pyramids behind a single lock acquisition;
// query loops (one per pixel, one per metric window) should resolve
// once per CPU and query the returned DomCPU lock-free.
type DomIndex struct {
	mu      sync.Mutex
	entries map[int32]*DomCPU
}

// DomCPU is one CPU's built pyramids; its query methods are lock-free
// and safe for concurrent use. A nil all set marks the CPU
// unindexable (disordered or overlapping state intervals): queries
// report indexed == false and callers must scan.
type DomCPU struct {
	once sync.Once
	// states is the CPU's sorted state array the pyramids were built
	// over (dominant leaves resolve back into it). For spilled live
	// traces the array is segmented instead: segs lists the non-empty
	// columns in time order and cum their cumulative start offsets, so
	// leaf i resolves to segs[k][i-cum[k]]. Exactly one of states/segs
	// is used (segs wins when non-nil).
	states []trace.StateEvent
	segs   [][]trace.StateEvent
	cum    []int
	// all spans every state interval; leaf i is the i-th logical state
	// event.
	all *mragg.Set
	// byState[s] spans only the intervals in state s, with refs back
	// into the logical state array; byState[StateTaskExec] doubles as
	// the task-execution dominance set.
	byState [trace.NumWorkerStates]*mragg.Set
}

// stateAt resolves logical state index i against the single array or
// the segmented view.
func (e *DomCPU) stateAt(i int32) trace.StateEvent {
	if e.segs == nil {
		return e.states[i]
	}
	k := sort.Search(len(e.cum), func(j int) bool { return e.cum[j] > int(i) }) - 1
	return e.segs[k][int(i)-e.cum[k]]
}

// NewDomIndex returns an empty index; entries build lazily per CPU.
func NewDomIndex() *DomIndex {
	return &DomIndex{entries: make(map[int32]*DomCPU)}
}

// entry returns the guarded slot for a CPU, creating it under the map
// lock; the pyramids build outside the lock so CPUs build in parallel.
func (di *DomIndex) entry(cpu int32) *DomCPU {
	di.mu.Lock()
	e, ok := di.entries[cpu]
	if !ok {
		e = &DomCPU{}
		di.entries[cpu] = e
	}
	di.mu.Unlock()
	return e
}

// seed installs a prebuilt entry for a CPU. The batch indexer uses it
// to publish the eagerly built pyramids; the live ingest path uses it
// to hand each snapshot the incrementally extended ones.
func (di *DomIndex) seed(cpu int32, e *DomCPU) {
	slot := di.entry(cpu)
	slot.once.Do(func() {
		slot.states = e.states
		slot.segs = e.segs
		slot.cum = e.cum
		slot.all = e.all
		slot.byState = e.byState
	})
}

// CPU returns the built pyramids for a CPU (building them from the
// trace's sorted state array on first use — one lock acquisition;
// the returned DomCPU queries lock-free). CPUs outside the trace
// yield an empty, indexed entry, mirroring StatesIn's nil result.
func (di *DomIndex) CPU(tr *Trace, cpu int32) *DomCPU {
	e := di.entry(cpu)
	e.once.Do(func() {
		var tail []trace.StateEvent
		if int(cpu) < len(tr.CPUs) {
			tail = tr.CPUs[cpu].States
		}
		if fc := tr.frozenFor(cpu); fc != nil && len(fc.states) > 0 {
			cols := make([][]trace.StateEvent, 0, len(fc.states)+1)
			cols = append(cols, fc.states...)
			cols = append(cols, tail)
			e.buildSegs(cols)
		} else {
			e.build(tail)
		}
	})
	return e
}

// build constructs the entry's pyramids from a sorted state array.
func (e *DomCPU) build(states []trace.StateEvent) {
	e.states = states
	n := len(states)
	starts := make([]int64, n)
	ends := make([]int64, n)
	for i := range states {
		starts[i], ends[i] = states[i].Start, states[i].End
	}
	e.all = mragg.Build(starts, ends, nil, 0)
	if e.all == nil {
		return
	}
	perStarts, perEnds, perRefs := perStateIntervals(states, 0)
	for k := range e.byState {
		// Subsets of a disjoint sorted set stay disjoint and sorted,
		// so these builds cannot fail.
		e.byState[k] = mragg.Build(perStarts[k], perEnds[k], perRefs[k], 0)
	}
}

// buildSegs constructs the entry's pyramids over a segmented state
// array: the time-ordered column list of a spilled CPU (frozen
// segments, then the RAM tail; empty columns allowed). Used by the
// lazy path when a spilled snapshot's incremental chain is unavailable
// (dirty producer, post-drop rebuild). Disordered or overlapping
// intervals leave all == nil, as in build: queries fall back to the
// stitched event scan.
func (e *DomCPU) buildSegs(cols [][]trace.StateEvent) {
	total := 0
	nonEmpty := 0
	for _, s := range cols {
		total += len(s)
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		var one []trace.StateEvent
		for _, s := range cols {
			if len(s) > 0 {
				one = s
			}
		}
		e.build(one)
		return
	}
	starts := make([]int64, 0, total)
	ends := make([]int64, 0, total)
	var perStarts, perEnds [trace.NumWorkerStates][]int64
	var perRefs [trace.NumWorkerStates][]int32
	at := 0
	for _, s := range cols {
		if len(s) == 0 {
			continue
		}
		e.segs = append(e.segs, s)
		e.cum = append(e.cum, at)
		for i := range s {
			starts = append(starts, s[i].Start)
			ends = append(ends, s[i].End)
		}
		ps, pe, pr := perStateIntervalsAt(s, at)
		for k := 0; k < trace.NumWorkerStates; k++ {
			perStarts[k] = append(perStarts[k], ps[k]...)
			perEnds[k] = append(perEnds[k], pe[k]...)
			perRefs[k] = append(perRefs[k], pr[k]...)
		}
		at += len(s)
	}
	e.all = mragg.Build(starts, ends, nil, 0)
	if e.all == nil {
		return
	}
	for k := range e.byState {
		e.byState[k] = mragg.Build(perStarts[k], perEnds[k], perRefs[k], 0)
	}
}

// perStateIntervals splits states[from:] into per-worker-state
// interval triples, with refs giving each interval's index in the
// full array. Out-of-range states are dropped (their events still
// participate in the all-states set, just not in per-state queries).
// Shared by the batch entry build and the live incremental extension
// so the two classify events identically.
func perStateIntervals(states []trace.StateEvent, from int) (starts, ends [trace.NumWorkerStates][]int64, refs [trace.NumWorkerStates][]int32) {
	return perStateIntervalsAt(states[from:], from)
}

// perStateIntervalsAt is perStateIntervals over a window whose first
// event has logical index base: refs come out absolute (base + j).
func perStateIntervalsAt(win []trace.StateEvent, base int) (starts, ends [trace.NumWorkerStates][]int64, refs [trace.NumWorkerStates][]int32) {
	for j := range win {
		k := int(win[j].State)
		if k >= trace.NumWorkerStates {
			continue
		}
		starts[k] = append(starts[k], win[j].Start)
		ends[k] = append(ends[k], win[j].End)
		refs[k] = append(refs[k], int32(base+j))
	}
	return starts, ends, refs
}

// DominantState returns the state event covering the largest part of
// [t0, t1). indexed is false when the CPU has no pyramid (malformed
// interval order) and the caller must scan instead; when indexed,
// the result is exactly the scan's (first strictly-greater cover
// wins).
func (e *DomCPU) DominantState(t0, t1 trace.Time) (ev trace.StateEvent, ok, indexed bool) {
	if e.all == nil {
		return trace.StateEvent{}, false, false
	}
	idx, _, ok := e.all.Dominant(t0, t1)
	if !ok {
		return trace.StateEvent{}, false, true
	}
	return e.stateAt(int32(idx)), true, true
}

// DominantExec is DominantState restricted to task-execution
// intervals (unfiltered; filtered queries must scan, as the filter
// match set is not known to the index).
func (e *DomCPU) DominantExec(t0, t1 trace.Time) (ev trace.StateEvent, ok, indexed bool) {
	set := e.byState[trace.StateTaskExec]
	if set == nil {
		return trace.StateEvent{}, false, false
	}
	idx, _, ok := set.Dominant(t0, t1)
	if !ok {
		return trace.StateEvent{}, false, true
	}
	return e.stateAt(int32(set.Ref(idx))), true, true
}

// StateCover returns the total time the CPU spent in state within
// [t0, t1). indexed is false when the CPU has no pyramid or the
// state is out of range; when indexed, the sum equals the clipped
// event scan exactly.
func (e *DomCPU) StateCover(state trace.WorkerState, t0, t1 trace.Time) (cover trace.Time, indexed bool) {
	if int(state) >= trace.NumWorkerStates {
		return 0, false
	}
	set := e.byState[state]
	if set == nil {
		return 0, false
	}
	return set.Cover(t0, t1), true
}

// DomIndex returns the trace's shared dominance index, creating it on
// first use. Safe for concurrent callers. Batch loads seed it eagerly
// at index time; live snapshots seed it with incrementally extended
// pyramids; hand-built traces get a lazily filled one.
func (tr *Trace) DomIndex() *DomIndex {
	tr.domOnce.Do(func() {
		tr.dom = NewDomIndex()
	})
	return tr.dom
}
