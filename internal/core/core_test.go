package core

import (
	"bytes"
	"testing"

	"github.com/openstream/aftermath/internal/apps"
	"github.com/openstream/aftermath/internal/openstream"
	"github.com/openstream/aftermath/internal/topology"
	"github.com/openstream/aftermath/internal/trace"
)

// buildTestTrace writes a small handcrafted trace.
func buildTestTrace(t *testing.T) *Trace {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.WriteTopology(trace.Topology{
		Name: "test", NumNodes: 2,
		NodeOfCPU: []int32{0, 0, 1, 1},
		Distance:  []int32{0, 1, 1, 0},
	}))
	must(w.WriteTaskType(trace.TaskType{ID: 1, Addr: 0x1000, Name: "work"}))
	must(w.WriteTaskType(trace.TaskType{ID: 2, Addr: 0x2000, Name: "init"}))
	must(w.WriteTask(trace.Task{ID: 10, Type: 1, Created: 5, CreatorCPU: 0}))
	must(w.WriteTask(trace.Task{ID: 11, Type: 2, Created: 6, CreatorCPU: 0}))
	must(w.WriteRegion(trace.MemRegion{ID: 1, Addr: 0x10000, Size: 0x1000, Node: 1}))
	must(w.WriteRegion(trace.MemRegion{ID: 2, Addr: 0x20000, Size: 0x1000, Node: 0}))
	must(w.WriteState(trace.StateEvent{CPU: 0, State: trace.StateIdle, Start: 0, End: 100}))
	must(w.WriteState(trace.StateEvent{CPU: 0, State: trace.StateTaskExec, Start: 100, End: 300, Task: 10}))
	must(w.WriteState(trace.StateEvent{CPU: 1, State: trace.StateTaskExec, Start: 50, End: 400, Task: 11}))
	must(w.WriteComm(trace.CommEvent{Kind: trace.CommRead, CPU: 0, SrcCPU: -1, Time: 100, Task: 10, Addr: 0x10080, Size: 64}))
	must(w.WriteComm(trace.CommEvent{Kind: trace.CommWrite, CPU: 0, SrcCPU: -1, Time: 300, Task: 10, Addr: 0x20000, Size: 128}))
	must(w.WriteCounterDesc(trace.CounterDesc{ID: 1, Name: "ctr", Monotonic: true}))
	for i, v := range []int64{0, 10, 30, 60} {
		must(w.WriteSample(trace.CounterSample{CPU: 0, Counter: 1, Time: int64(i) * 100, Value: v}))
	}
	must(w.Flush())
	tr, err := FromReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLoadBasics(t *testing.T) {
	tr := buildTestTrace(t)
	if tr.NumCPUs() < 2 {
		t.Fatalf("NumCPUs = %d, want >= 2", tr.NumCPUs())
	}
	if tr.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", tr.NumNodes())
	}
	if len(tr.Types) != 2 {
		t.Errorf("types = %d, want 2", len(tr.Types))
	}
	if tr.TypeName(1) != "work" || tr.TypeName(2) != "init" {
		t.Error("type names wrong")
	}
	if tr.TypeName(99) != "type_99" {
		t.Errorf("missing type name = %q", tr.TypeName(99))
	}
	if len(tr.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(tr.Tasks))
	}
	if tr.Span.Start != 0 || tr.Span.End != 400 {
		t.Errorf("span = %+v, want [0,400)", tr.Span)
	}
}

func TestTaskPlacementDerived(t *testing.T) {
	tr := buildTestTrace(t)
	task, ok := tr.TaskByID(10)
	if !ok {
		t.Fatal("task 10 missing")
	}
	if task.ExecCPU != 0 || task.ExecStart != 100 || task.ExecEnd != 300 {
		t.Errorf("task 10 placement = %+v", task)
	}
	if task.Duration() != 200 {
		t.Errorf("duration = %d, want 200", task.Duration())
	}
	if _, ok := tr.TaskByID(999); ok {
		t.Error("task 999 should not exist")
	}
}

func TestStatesIn(t *testing.T) {
	tr := buildTestTrace(t)
	all := tr.StatesIn(0, 0, 400)
	if len(all) != 2 {
		t.Fatalf("all states = %d, want 2", len(all))
	}
	// Interval touching only the exec state.
	ex := tr.StatesIn(0, 150, 200)
	if len(ex) != 1 || ex[0].State != trace.StateTaskExec {
		t.Errorf("mid interval = %+v", ex)
	}
	// Interval boundary semantics: [0,100) only overlaps idle.
	idle := tr.StatesIn(0, 0, 100)
	if len(idle) != 1 || idle[0].State != trace.StateIdle {
		t.Errorf("prefix interval = %+v", idle)
	}
	if got := tr.StatesIn(0, 400, 500); len(got) != 0 {
		t.Errorf("after end = %+v", got)
	}
	if got := tr.StatesIn(99, 0, 400); got != nil {
		t.Errorf("unknown CPU = %+v", got)
	}
}

func TestRegionLookup(t *testing.T) {
	tr := buildTestTrace(t)
	r, ok := tr.RegionAt(0x10080)
	if !ok || r.Node != 1 {
		t.Errorf("RegionAt(0x10080) = %+v, %v", r, ok)
	}
	if node := tr.NodeOfAddr(0x20000); node != 0 {
		t.Errorf("NodeOfAddr(0x20000) = %d, want 0", node)
	}
	if node := tr.NodeOfAddr(0x999999); node != -1 {
		t.Errorf("NodeOfAddr(unknown) = %d, want -1", node)
	}
	if _, ok := tr.RegionAt(0x100); ok {
		t.Error("address before all regions must miss")
	}
	if _, ok := tr.RegionAt(0x11000); ok {
		t.Error("address in gap must miss")
	}
}

func TestCounterQueries(t *testing.T) {
	tr := buildTestTrace(t)
	c, ok := tr.CounterByName("ctr")
	if !ok {
		t.Fatal("counter missing")
	}
	if v, ok := c.ValueAt(0, 150); !ok || v != 10 {
		t.Errorf("ValueAt(150) = %d,%v want 10", v, ok)
	}
	if v, ok := c.ValueAt(0, 0); !ok || v != 0 {
		t.Errorf("ValueAt(0) = %d,%v want 0", v, ok)
	}
	if _, ok := c.ValueAt(0, -5); ok {
		t.Error("ValueAt before first sample must miss")
	}
	if s := c.SamplesIn(0, 100, 300); len(s) != 2 {
		t.Errorf("SamplesIn = %d samples, want 2", len(s))
	}
	if _, ok := tr.CounterByName("nope"); ok {
		t.Error("unknown counter found")
	}
	if _, ok := tr.CounterByID(1); !ok {
		t.Error("CounterByID(1) missing")
	}
}

func TestTaskComm(t *testing.T) {
	tr := buildTestTrace(t)
	task, _ := tr.TaskByID(10)
	comm := tr.TaskComm(task)
	if len(comm) != 2 {
		t.Fatalf("task comm = %d events, want 2", len(comm))
	}
	if comm[0].Kind != trace.CommRead || comm[1].Kind != trace.CommWrite {
		t.Errorf("comm kinds = %v, %v", comm[0].Kind, comm[1].Kind)
	}
	other, _ := tr.TaskByID(11)
	if got := tr.TaskComm(other); len(got) != 0 {
		t.Errorf("task 11 comm = %d events, want 0", len(got))
	}
}

func TestNoTopologySynthesized(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if err := w.WriteState(trace.StateEvent{CPU: 5, State: trace.StateTaskExec, Start: 0, End: 10, Task: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := FromReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCPUs() != 6 {
		t.Errorf("NumCPUs = %d, want 6", tr.NumCPUs())
	}
	if tr.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", tr.NumNodes())
	}
	// Task synthesized from the exec state despite no task record.
	task, ok := tr.TaskByID(1)
	if !ok || task.ExecCPU != 5 {
		t.Errorf("synthesized task = %+v, %v", task, ok)
	}
}

func TestDistance(t *testing.T) {
	tr := buildTestTrace(t)
	if d := tr.Distance(0, 1); d != 1 {
		t.Errorf("Distance(0,1) = %d, want 1", d)
	}
	if d := tr.Distance(0, 0); d != 0 {
		t.Errorf("Distance(0,0) = %d, want 0", d)
	}
	if d := tr.Distance(-1, 5); d != 0 {
		t.Errorf("Distance out of range = %d, want 0", d)
	}
}

// End-to-end: simulate a real workload, load its trace, verify the
// totals line up with the simulation result.
func TestLoadSimulatedTrace(t *testing.T) {
	p, err := apps.BuildSeidel(apps.ScaledSeidelConfig(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	cfg := openstream.DefaultConfig(topology.Small(2, 4))
	res, err := openstream.Run(p, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := FromReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCPUs() != 8 {
		t.Errorf("NumCPUs = %d, want 8", tr.NumCPUs())
	}
	if len(tr.Tasks) != p.NumTasks() {
		t.Errorf("tasks = %d, want %d", len(tr.Tasks), p.NumTasks())
	}
	if tr.Span.End != res.Makespan {
		t.Errorf("span end = %d, makespan = %d", tr.Span.End, res.Makespan)
	}
	// Every task must have derived placement.
	for i := range tr.Tasks {
		if tr.Tasks[i].ExecCPU < 0 {
			t.Fatalf("task %d has no placement", tr.Tasks[i].ID)
		}
	}
	// Exec time accounted in states must match the simulator's.
	var execTotal int64
	for cpu := 0; cpu < tr.NumCPUs(); cpu++ {
		for _, s := range tr.StatesIn(int32(cpu), tr.Span.Start, tr.Span.End) {
			if s.State == trace.StateTaskExec {
				execTotal += s.Duration()
			}
		}
	}
	if execTotal != res.StateCycles[trace.StateTaskExec] {
		t.Errorf("exec cycles from trace %d != simulator %d", execTotal, res.StateCycles[trace.StateTaskExec])
	}
}
