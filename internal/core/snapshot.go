package core

import (
	"fmt"
	"math"

	"github.com/openstream/aftermath/internal/mmtree"
	"github.com/openstream/aftermath/internal/mragg"
	"github.com/openstream/aftermath/internal/store"
	"github.com/openstream/aftermath/internal/trace"
)

// snapshotFormatVersion is the columnar snapshot meta layout version.
// Segment files (spill.go) version independently.
const snapshotFormatVersion = 1

// SaveStore writes the trace as a columnar snapshot: every per-CPU
// event array, counter sample array and table dumped as raw columns,
// plus the fully built aggregation pyramids (the dominance sets and
// the counter min/max and rate trees), so OpenStore can map the file
// and answer indexed queries without rebuilding anything. Spilled live
// snapshots are stitched into single columns on the way out, making
// SaveStore also the natural "compact a live session to one file"
// path.
func SaveStore(tr *Trace, path string) (err error) {
	// Build the indexes being persisted. For spilled snapshots the
	// pyramids' leaf refs are logical indices into the stitched arrays,
	// which is exactly the layout the columns are written in.
	di := tr.DomIndex()
	tr.BuildCounterIndex(0)

	w, err := store.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			w.Abort()
		}
	}()

	var e store.Enc
	e.Int(snapshotFormatVersion)
	e.U64(layoutHash())
	e.I64(tr.Span.Start)
	e.I64(tr.Span.End)

	e.Str(tr.Topology.Name)
	e.Int(int(tr.Topology.NumNodes))
	e.Ref(store.Put(w, tr.Topology.NodeOfCPU))
	e.Ref(store.Put(w, tr.Topology.Distance))

	e.Int(len(tr.Types))
	for _, tt := range tr.Types {
		e.U64(uint64(tt.ID))
		e.U64(tt.Addr)
		e.Str(tt.Name)
	}
	e.Ref(store.Put(w, tr.Tasks))
	e.Ref(store.Put(w, tr.Regions))

	const lo, hi = math.MinInt64, math.MaxInt64
	e.Int(len(tr.CPUs))
	for cpu := int32(0); int(cpu) < len(tr.CPUs); cpu++ {
		e.Ref(store.Put(w, tr.StatesIn(cpu, lo, hi)))
		e.Ref(store.Put(w, tr.DiscreteIn(cpu, lo, hi)))
		e.Ref(store.Put(w, tr.CommIn(cpu, lo, hi)))
	}

	e.Int(len(tr.Counters))
	for _, c := range tr.Counters {
		e.U64(uint64(c.Desc.ID))
		e.Str(c.Desc.Name)
		if c.Desc.Monotonic {
			e.Int(1)
		} else {
			e.Int(0)
		}
		e.Int(len(c.PerCPU))
		for cpu := range c.PerCPU {
			e.Ref(store.Put(w, c.Samples(int32(cpu))))
		}
	}

	// Dominance pyramids, one entry per CPU: the all-states set and the
	// per-worker-state sets. CPUs whose intervals were unindexable
	// store empty sets; OpenStore leaves those entries to the lazy
	// builder, which reproduces the unindexable verdict from the
	// columns.
	for cpu := int32(0); int(cpu) < len(tr.CPUs); cpu++ {
		dc := di.CPU(tr, cpu)
		putSet(w, &e, dc.all)
		for k := 0; k < trace.NumWorkerStates; k++ {
			putSet(w, &e, dc.byState[k])
		}
	}

	// Counter min/max and rate trees for every (counter, cpu) with
	// samples, in table order.
	ci := tr.CounterIndex()
	for _, c := range tr.Counters {
		for cpu := range c.PerCPU {
			if len(c.Samples(int32(cpu))) == 0 {
				e.Int(0)
				continue
			}
			e.Int(1)
			putTree(w, &e, ci.Tree(c, int32(cpu)))
			putTree(w, &e, ci.RateTree(c, int32(cpu)))
		}
	}

	return w.Finish(e.Bytes())
}

// putSet appends a dominance set's raw columns; nil sets store a
// present=0 flag only.
func putSet(w *store.Writer, e *store.Enc, s *mragg.Set) {
	if s == nil {
		e.Int(0)
		return
	}
	e.Int(1)
	arity, starts, ends, prefix, refs, maxs, args := s.Raw()
	e.Int(arity)
	e.Ref(store.Put(w, starts))
	e.Ref(store.Put(w, ends))
	e.Ref(store.Put(w, prefix))
	e.Ref(store.Put(w, refs))
	e.Int(len(maxs))
	for _, lvl := range maxs {
		e.Ref(store.Put(w, lvl))
	}
	e.Int(len(args))
	for _, lvl := range args {
		e.Ref(store.Put(w, lvl))
	}
}

func viewSet(m *store.Mapped, d *store.Dec) (*mragg.Set, error) {
	if d.Int() == 0 {
		return nil, d.Err()
	}
	arity := d.Int()
	starts, err := store.View[int64](m, d.Ref())
	if err != nil {
		return nil, err
	}
	ends, err := store.View[int64](m, d.Ref())
	if err != nil {
		return nil, err
	}
	prefix, err := store.View[int64](m, d.Ref())
	if err != nil {
		return nil, err
	}
	refs, err := store.View[int32](m, d.Ref())
	if err != nil {
		return nil, err
	}
	maxs := make([][]int64, d.Int())
	for i := range maxs {
		if maxs[i], err = store.View[int64](m, d.Ref()); err != nil {
			return nil, err
		}
	}
	args := make([][]int32, d.Int())
	for i := range args {
		if args[i], err = store.View[int32](m, d.Ref()); err != nil {
			return nil, err
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return mragg.FromRaw(arity, starts, ends, prefix, refs, maxs, args), nil
}

// putTree appends a min/max tree's raw columns.
func putTree(w *store.Writer, e *store.Enc, t *mmtree.Tree) {
	arity, times, values, mins, maxs := t.Raw()
	e.Int(arity)
	e.Ref(store.Put(w, times))
	e.Ref(store.Put(w, values))
	e.Int(len(mins))
	for i := range mins {
		e.Ref(store.Put(w, mins[i]))
		e.Ref(store.Put(w, maxs[i]))
	}
}

func viewTree(m *store.Mapped, d *store.Dec) (*mmtree.Tree, error) {
	arity := d.Int()
	times, err := store.View[int64](m, d.Ref())
	if err != nil {
		return nil, err
	}
	values, err := store.View[int64](m, d.Ref())
	if err != nil {
		return nil, err
	}
	n := d.Int()
	mins := make([][]int64, n)
	maxs := make([][]int64, n)
	for i := 0; i < n; i++ {
		if mins[i], err = store.View[int64](m, d.Ref()); err != nil {
			return nil, err
		}
		if maxs[i], err = store.View[int64](m, d.Ref()); err != nil {
			return nil, err
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return mmtree.FromRaw(arity, times, values, mins, maxs), nil
}

// OpenStore maps a columnar snapshot written by SaveStore. Event and
// sample columns, tables and aggregation pyramids are zero-copy views
// into the mapping: the open cost is parsing the meta blob — O(CPUs +
// counters + types), independent of event count — and query cost is
// O(touched pages). The task-ID map builds lazily on first TaskByID.
// The returned trace owns the mapping; Close releases it.
func OpenStore(path string) (tr *Trace, err error) {
	m, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			m.Close()
		}
	}()

	d := store.NewDec(m.Meta())
	if v := d.Int(); v != snapshotFormatVersion {
		return nil, fmt.Errorf("store: snapshot format version %d, want %d", v, snapshotFormatVersion)
	}
	if h := d.U64(); h != layoutHash() {
		return nil, fmt.Errorf("store: snapshot written with incompatible type layout (hash %#x, want %#x)", h, layoutHash())
	}

	tr = newTrace()
	tr.lazyTaskIDs = true
	tr.taskByID = nil
	tr.backing = m
	tr.Span.Start = d.I64()
	tr.Span.End = d.I64()

	tr.Topology.Name = d.Str()
	tr.Topology.NumNodes = int32(d.Int())
	if tr.Topology.NodeOfCPU, err = store.View[int32](m, d.Ref()); err != nil {
		return nil, err
	}
	if tr.Topology.Distance, err = store.View[int32](m, d.Ref()); err != nil {
		return nil, err
	}

	nTypes := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	tr.Types = make([]trace.TaskType, 0, nTypes)
	for i := 0; i < nTypes; i++ {
		tt := trace.TaskType{ID: trace.TypeID(d.U64()), Addr: d.U64(), Name: d.Str()}
		tr.Types = append(tr.Types, tt)
		tr.typeByID[tt.ID] = i
	}
	if tr.Tasks, err = store.View[TaskInfo](m, d.Ref()); err != nil {
		return nil, err
	}
	if tr.Regions, err = store.View[trace.MemRegion](m, d.Ref()); err != nil {
		return nil, err
	}

	nCPU := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	tr.CPUs = make([]CPUData, nCPU)
	for i := 0; i < nCPU; i++ {
		if tr.CPUs[i].States, err = store.View[trace.StateEvent](m, d.Ref()); err != nil {
			return nil, err
		}
		if tr.CPUs[i].Discrete, err = store.View[trace.DiscreteEvent](m, d.Ref()); err != nil {
			return nil, err
		}
		if tr.CPUs[i].Comm, err = store.View[trace.CommEvent](m, d.Ref()); err != nil {
			return nil, err
		}
	}

	nCounters := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	tr.Counters = make([]*Counter, 0, nCounters)
	for i := 0; i < nCounters; i++ {
		c := &Counter{Desc: trace.CounterDesc{
			ID:        trace.CounterID(d.U64()),
			Name:      d.Str(),
			Monotonic: d.Int() != 0,
		}}
		c.PerCPU = make([][]trace.CounterSample, d.Int())
		for cpu := range c.PerCPU {
			if c.PerCPU[cpu], err = store.View[trace.CounterSample](m, d.Ref()); err != nil {
				return nil, err
			}
		}
		tr.counterByID[c.Desc.ID] = i
		tr.Counters = append(tr.Counters, c)
	}
	tr.counterByName = buildCounterNameIndex(tr.Counters)

	di := NewDomIndex()
	for cpu := int32(0); int(cpu) < nCPU; cpu++ {
		all, err := viewSet(m, d)
		if err != nil {
			return nil, err
		}
		dc := &DomCPU{states: tr.CPUs[cpu].States, all: all}
		for k := 0; k < trace.NumWorkerStates; k++ {
			if dc.byState[k], err = viewSet(m, d); err != nil {
				return nil, err
			}
		}
		// A stored nil all-set means the CPU was empty or unindexable;
		// leave the entry to the lazy builder, which re-derives that
		// verdict from the (possibly empty) column.
		if all != nil {
			di.seed(cpu, dc)
		}
	}
	tr.domOnce.Do(func() { tr.dom = di })

	ci := NewCounterIndex(0)
	for _, c := range tr.Counters {
		for cpu := range c.PerCPU {
			if d.Int() == 0 {
				continue
			}
			vt, err := viewTree(m, d)
			if err != nil {
				return nil, err
			}
			rt, err := viewTree(m, d)
			if err != nil {
				return nil, err
			}
			ci.seed(counterCPU{uint64(c.Desc.ID), int32(cpu), false}, vt)
			ci.seed(counterCPU{uint64(c.Desc.ID), int32(cpu), true}, rt)
		}
	}
	tr.cindexOnce.Do(func() { tr.cindex = ci })

	if err := d.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}
