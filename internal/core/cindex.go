package core

import (
	"sync"

	"github.com/openstream/aftermath/internal/mmtree"
	"github.com/openstream/aftermath/internal/par"
	"github.com/openstream/aftermath/internal/trace"
)

// RateScale is the fixed-point scale for rate trees: rates are stored
// as events per kilocycle times RateScale.
const RateScale = 1 << 16

// CounterIndex holds one min/max tree per (counter, cpu, rate) triple
// — the index structure of Section VI-B-c. It is safe for concurrent
// use: each tree is built exactly once, on first request, and
// concurrent requests for different trees build in parallel. Traces
// own one shared index (see Trace.CounterIndex), so every renderer,
// overlay and viewer request reuses the same trees.
type CounterIndex struct {
	arity   int
	mu      sync.Mutex
	entries map[counterCPU]*indexEntry
}

type counterCPU struct {
	counter uint64
	cpu     int32
	rate    bool
}

type indexEntry struct {
	once sync.Once
	tree *mmtree.Tree
}

// NewCounterIndex returns an empty index with the given tree arity
// (mmtree.DefaultArity when < 2).
func NewCounterIndex(arity int) *CounterIndex {
	return &CounterIndex{arity: arity, entries: make(map[counterCPU]*indexEntry)}
}

// entry returns the guarded slot for a key, creating it under the map
// lock; the tree itself is built outside the lock so different trees
// build concurrently.
func (ci *CounterIndex) entry(key counterCPU) *indexEntry {
	ci.mu.Lock()
	e, ok := ci.entries[key]
	if !ok {
		e = &indexEntry{}
		ci.entries[key] = e
	}
	ci.mu.Unlock()
	return e
}

// Tree returns the min/max tree over the counter's raw values on cpu.
func (ci *CounterIndex) Tree(c *Counter, cpu int32) *mmtree.Tree {
	e := ci.entry(counterCPU{uint64(c.Desc.ID), cpu, false})
	e.once.Do(func() {
		samples := c.Samples(cpu)
		times := make([]int64, len(samples))
		values := make([]int64, len(samples))
		for i, s := range samples {
			times[i], values[i] = s.Time, s.Value
		}
		e.tree = mmtree.Build(times, values, ci.arity)
	})
	return e.tree
}

// rateSamples computes the fixed-point rate entries derived from a
// counter's sample array: entry i (for i in [from, len(samples)-1))
// covers [samples[i].Time, samples[i+1].Time) at the constant rate
// (dv * 1000 * RateScale / dt) events per kilocycle, 0 when dt <= 0.
// Both the lazy RateTree build and the live ingest path's incremental
// tree extension derive their entries here, so the two stay
// bit-identical by construction.
func rateSamples(samples []trace.CounterSample, from int) (times, values []int64) {
	if from < 0 {
		from = 0
	}
	n := len(samples) - 1 - from
	if n <= 0 {
		return nil, nil
	}
	times = make([]int64, n)
	values = make([]int64, n)
	for i := 0; i < n; i++ {
		s := from + i
		dt := samples[s+1].Time - samples[s].Time
		times[i] = samples[s].Time
		if dt > 0 {
			dv := samples[s+1].Value - samples[s].Value
			values[i] = dv * 1000 * RateScale / dt
		}
	}
	return times, values
}

// RateTree returns the min/max tree over the counter's discrete
// derivative on cpu, in fixed-point events per kilocycle: the constant
// interpolation per task of Figure 18 (counters are sampled
// immediately before and after each task execution, so the rate is
// constant over each execution).
func (ci *CounterIndex) RateTree(c *Counter, cpu int32) *mmtree.Tree {
	e := ci.entry(counterCPU{uint64(c.Desc.ID), cpu, true})
	e.once.Do(func() {
		times, values := rateSamples(c.Samples(cpu), 0)
		e.tree = mmtree.Build(times, values, ci.arity)
	})
	return e.tree
}

// seed installs a prebuilt tree for a key. The live ingest path uses
// this to hand each published snapshot the incrementally extended
// trees (mmtree append mode) instead of letting the snapshot rebuild
// them from scratch; unseeded keys still build lazily on first use.
func (ci *CounterIndex) seed(key counterCPU, t *mmtree.Tree) {
	e := ci.entry(key)
	e.once.Do(func() { e.tree = t })
}

// CounterIndex returns the trace's shared min/max tree index, creating
// it on first use. Safe for concurrent callers.
func (tr *Trace) CounterIndex() *CounterIndex {
	tr.cindexOnce.Do(func() {
		tr.cindex = NewCounterIndex(0)
	})
	return tr.cindex
}

// BuildCounterIndex eagerly builds the value and rate trees for every
// (counter, cpu) pair with samples, spreading the work over up to
// workers goroutines (<= 0 selects a worker per GOMAXPROCS). Useful
// to warm the index right after loading, before serving viewer
// traffic; lazy first-use construction remains available without it.
func (tr *Trace) BuildCounterIndex(workers int) *CounterIndex {
	ci := tr.CounterIndex()
	if workers <= 0 {
		workers = par.Workers()
	}
	type job struct {
		c   *Counter
		cpu int32
	}
	var jobs []job
	for _, c := range tr.Counters {
		for cpu := range c.PerCPU {
			if len(c.PerCPU[cpu]) > 0 {
				jobs = append(jobs, job{c, int32(cpu)})
			}
		}
	}
	par.Do(workers, len(jobs), func(i int) {
		ci.Tree(jobs[i].c, jobs[i].cpu)
		ci.RateTree(jobs[i].c, jobs[i].cpu)
	})
	return ci
}
