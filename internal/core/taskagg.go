// Incrementally maintained trace-global aggregates. The anomaly
// detectors score every finding against trace-global baselines — the
// per-type duration populations (duration outliers), each task's
// remote-access summary and the machine-wide communication totals
// (NUMA anomalies). A cold scan derives those baselines by walking the
// whole trace; a live trace would pay that walk on every published
// epoch even though only the appended events can change them. The
// types here carry the baselines *inside* the snapshot: the live
// builder updates them from the appended data alone (see live.go) and
// seeds each snapshot, so consumers ask the trace first and fall back
// to the full walk only when no index was seeded (batch loads,
// hand-built traces) or when explicitly ablated.
//
// Every value is defined to be byte-identical to what the
// corresponding full walk computes — the live batch-equivalence
// harness (TestStreamEqualsBatch) compares indexed snapshots against
// cold scans, so any drift is a test failure, not a rendering quirk.
package core

import (
	"sort"

	"github.com/openstream/aftermath/internal/trace"
)

// LocSum summarizes one task's memory-access locality: the bytes it
// touched in known regions, the bytes homed away from its executing
// node, and the remote node holding the most of them (ties toward the
// lowest node id; -1 when nothing was remote). It is exactly the
// accumulation the NUMA detector performs per task, hoisted here so
// the incremental maintenance and the cold path share one definition.
type LocSum struct {
	Total     int64
	Remote    int64
	WorstNode int32
}

// TaskLocalityOf computes a task's LocSum by scanning its
// communication events — the single definition of the accumulation.
// The result is independent of event order: Total and Remote are sums,
// and WorstNode resolves to the argmax of the final per-node byte
// counts with ties toward the lowest node id, because a node can only
// take the lead when its running count strictly exceeds the leader's
// (or equals it with a lower id), and counts only grow.
func TaskLocalityOf(tr *Trace, t *TaskInfo) LocSum {
	if t.ExecCPU < 0 {
		return LocSum{WorstNode: -1}
	}
	execNode := tr.NodeOfCPU(t.ExecCPU)
	ls := LocSum{WorstNode: -1}
	var worstBytes int64
	var perNode map[int32]int64
	for _, ev := range tr.TaskComm(t) {
		if ev.Kind != trace.CommRead && ev.Kind != trace.CommWrite {
			continue
		}
		home := tr.NodeOfAddr(ev.Addr)
		if home < 0 {
			continue
		}
		n := int64(ev.Size)
		ls.Total += n
		if home != execNode {
			ls.Remote += n
			if perNode == nil {
				perNode = make(map[int32]int64)
			}
			perNode[home] += n
			if b := perNode[home]; b > worstBytes || (b == worstBytes && home < ls.WorstNode) {
				ls.WorstNode, worstBytes = home, b
			}
		}
	}
	return ls
}

// CommTotals is the trace-wide communication matrix, split by access
// kind so any kind selection can be served: Reads[a*N+h] (and Writes)
// accumulate the bytes CPU workers on node a accessed in regions homed
// on node h, over all communication events. TMin/TMax bound the event
// times accounted, so consumers can tell whether a window query covers
// every event (and the totals therefore answer it exactly).
type CommTotals struct {
	N      int
	Reads  []int64
	Writes []int64
	// Count is the number of communication events accounted, including
	// events skipped for an unknown home node.
	Count      int
	TMin, TMax trace.Time
}

// Covers reports whether the window [t0, t1) contains every
// communication event the totals accumulated, i.e. whether the totals
// equal a scan of that window.
func (ct *CommTotals) Covers(t0, t1 trace.Time) bool {
	return ct.Count == 0 || (t0 <= ct.TMin && t1 > ct.TMax)
}

// addComm accumulates one CPU's communication events [lo, len) into
// the totals, mirroring the per-event logic of the stats scan path
// (stats.CommMatrixScanOf) exactly: a CPU whose node is out of range
// contributes nothing, accesses to unknown or out-of-range homes are
// skipped, and bytes are plain int64 sums (so accumulation order can
// never change the result).
func (ct *CommTotals) addComm(tr *Trace, cpu int32, evs []trace.CommEvent, lo int) {
	accessor := int(tr.NodeOfCPU(cpu))
	for _, ev := range evs[lo:] {
		if ct.Count == 0 || ev.Time < ct.TMin {
			ct.TMin = ev.Time
		}
		if ct.Count == 0 || ev.Time > ct.TMax {
			ct.TMax = ev.Time
		}
		ct.Count++
		if accessor >= ct.N {
			continue
		}
		var mat []int64
		switch ev.Kind {
		case trace.CommRead:
			mat = ct.Reads
		case trace.CommWrite:
			mat = ct.Writes
		default:
			continue
		}
		home := tr.NodeOfAddr(ev.Addr)
		if home < 0 || int(home) >= ct.N {
			continue
		}
		mat[accessor*ct.N+int(home)] += int64(ev.Size)
	}
}

// clone returns a deep copy, so the builder can extend the totals
// while published snapshots keep theirs immutable.
func (ct *CommTotals) clone() *CommTotals {
	nc := *ct
	nc.Reads = append([]int64(nil), ct.Reads...)
	nc.Writes = append([]int64(nil), ct.Writes...)
	return &nc
}

// TaskAgg bundles the task-level aggregate baselines seeded into a
// snapshot: per-type sorted duration populations and per-task locality
// summaries.
type TaskAgg struct {
	// durs[typ] holds the execution durations of every executed task
	// of that type, ascending. Slices are copy-on-write: an epoch that
	// changes a type's population publishes a fresh slice.
	durs map[trace.TypeID][]float64
	// loc[i] is the LocSum of Trace.Tasks[i].
	loc []LocSum
}

// TaskDurations returns the sorted execution durations of every
// executed task of the given type, or nil when the trace carries no
// aggregate index (batch loads). The returned slice is shared and must
// not be modified.
func (tr *Trace) TaskDurations(typ trace.TypeID) []float64 {
	if tr.taskAgg == nil {
		return nil
	}
	return tr.taskAgg.durs[typ]
}

// TaskLocality returns the per-task locality summaries aligned with
// Tasks, or nil when the trace carries no aggregate index. The
// returned slice is shared and must not be modified.
func (tr *Trace) TaskLocality() []LocSum {
	if tr.taskAgg == nil {
		return nil
	}
	return tr.taskAgg.loc
}

// CommTotals returns the trace-wide communication totals, or nil when
// the trace carries no aggregate index. The returned value is shared
// and must not be modified.
func (tr *Trace) CommTotals() *CommTotals {
	return tr.commTotals
}

// mergeSorted merges a sorted population with sorted additions into a
// fresh slice.
func mergeSorted(s, add []float64) []float64 {
	out := make([]float64, 0, len(s)+len(add))
	i, j := 0, 0
	for i < len(s) && j < len(add) {
		if s[i] <= add[j] {
			out = append(out, s[i])
			i++
		} else {
			out = append(out, add[j])
			j++
		}
	}
	out = append(out, s[i:]...)
	return append(out, add[j:]...)
}

// removeSorted removes one instance of each value in rem from the
// sorted population s, into a fresh slice. Values are exact (durations
// are integer cycle counts converted to float64), so bitwise equality
// finds them; a value not present is ignored.
func removeSorted(s, rem []float64) []float64 {
	out := append([]float64(nil), s...)
	for _, v := range rem {
		i := sort.SearchFloat64s(out, v)
		if i < len(out) && out[i] == v {
			out = append(out[:i], out[i+1:]...)
		}
	}
	return out
}
