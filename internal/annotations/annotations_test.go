package annotations

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAddKeepsSorted(t *testing.T) {
	var s Set
	s.Add(Annotation{Time: 300, Text: "c"})
	s.Add(Annotation{Time: 100, Text: "a"})
	s.Add(Annotation{Time: 200, Text: "b"})
	if len(s.Annotations) != 3 {
		t.Fatalf("len = %d", len(s.Annotations))
	}
	for i, want := range []string{"a", "b", "c"} {
		if s.Annotations[i].Text != want {
			t.Errorf("annotations[%d] = %q, want %q", i, s.Annotations[i].Text, want)
		}
	}
}

func TestIn(t *testing.T) {
	var s Set
	for _, tm := range []int64{10, 20, 30, 40} {
		s.Add(Annotation{Time: tm})
	}
	if got := s.In(15, 35); len(got) != 2 {
		t.Errorf("In(15,35) = %d annotations, want 2", len(got))
	}
	if got := s.In(100, 200); len(got) != 0 {
		t.Errorf("In(100,200) = %d, want 0", len(got))
	}
	if got := s.In(10, 11); len(got) != 1 {
		t.Errorf("In(10,11) = %d, want 1", len(got))
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.json")
	s := &Set{TracePath: "trace.atm"}
	s.Add(Annotation{Time: 500, CPU: 3, Author: "kh", Text: "idle band starts"})
	s.Add(Annotation{Time: 100, CPU: -1, Author: "ad", Text: "init phase"})
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TracePath != "trace.atm" {
		t.Errorf("trace path = %q", got.TracePath)
	}
	if len(got.Annotations) != 2 || got.Annotations[0].Text != "init phase" {
		t.Errorf("loaded = %+v", got.Annotations)
	}
	if got.Annotations[1].CPU != 3 || got.Annotations[1].Author != "kh" {
		t.Errorf("fields lost: %+v", got.Annotations[1])
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := (&Set{}).Save(path); err != nil {
		t.Fatal(err)
	}
	// Corrupt it.
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("corrupt file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
