// Package annotations stores user-defined annotations on traces.
// Annotations are saved independently from the trace file and loaded
// for later analysis sessions, supporting collaborative performance
// debugging (paper Section VI-C).
package annotations

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/openstream/aftermath/internal/trace"
)

// Annotation marks a point of interest in a trace.
type Annotation struct {
	// Time is the annotated instant in trace time (cycles).
	Time trace.Time `json:"time"`
	// CPU is the annotated CPU, or -1 for a global annotation.
	CPU int32 `json:"cpu"`
	// Author identifies who wrote the annotation.
	Author string `json:"author,omitempty"`
	// Text is the annotation body.
	Text string `json:"text"`
}

// Set is a collection of annotations kept sorted by time.
type Set struct {
	// TracePath optionally records which trace the annotations
	// belong to.
	TracePath   string       `json:"trace,omitempty"`
	Annotations []Annotation `json:"annotations"`
}

// Add inserts an annotation, keeping the set sorted by time.
func (s *Set) Add(a Annotation) {
	i := sort.Search(len(s.Annotations), func(i int) bool {
		return s.Annotations[i].Time > a.Time
	})
	s.Annotations = append(s.Annotations, Annotation{})
	copy(s.Annotations[i+1:], s.Annotations[i:])
	s.Annotations[i] = a
}

// In returns the annotations with time in [t0, t1).
func (s *Set) In(t0, t1 trace.Time) []Annotation {
	lo := sort.Search(len(s.Annotations), func(i int) bool { return s.Annotations[i].Time >= t0 })
	hi := sort.Search(len(s.Annotations), func(i int) bool { return s.Annotations[i].Time >= t1 })
	return s.Annotations[lo:hi]
}

// Save writes the set as JSON to path.
func (s *Set) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a set from a JSON file and sorts it by time.
func Load(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Set
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("annotations: %s: %w", path, err)
	}
	sort.SliceStable(s.Annotations, func(i, j int) bool {
		return s.Annotations[i].Time < s.Annotations[j].Time
	})
	return &s, nil
}
