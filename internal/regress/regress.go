// Package regress provides the statistics the paper computes with
// SciPy in Section V: least-squares linear regression with the
// coefficient of determination, plus means, standard deviations and
// Pearson correlation.
package regress

import (
	"errors"
	"math"
)

// ErrDegenerate reports that the input does not determine a fit
// (fewer than two points, or zero variance in x).
var ErrDegenerate = errors.New("regress: degenerate input")

// Fit is a least-squares line y = Slope*x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit, the
	// correlation metric used in the paper's Figure 19.
	R2 float64
	N  int
}

// Linear fits a least-squares line through (xs[i], ys[i]).
func Linear(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("regress: length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}, ErrDegenerate
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, ErrDegenerate
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx, N: len(xs)}
	if syy == 0 {
		// All y equal: the horizontal fit is exact.
		fit.R2 = 1
		return fit, nil
	}
	// R^2 = 1 - SS_res/SS_tot; for simple linear regression this
	// equals the squared Pearson correlation.
	fit.R2 = (sxy * sxy) / (sxx * syy)
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f Fit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for fewer than
// two values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient, or 0 when
// undefined.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
