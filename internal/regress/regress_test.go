package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-12 || math.Abs(fit.Intercept+7) > 1e-12 {
		t.Errorf("fit = %+v, want slope 3 intercept -7", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if p := fit.Predict(10); math.Abs(p-23) > 1e-12 {
		t.Errorf("Predict(10) = %v, want 23", p)
	}
}

func TestNoisyLineR2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, 2*x+1+rng.NormFloat64()*0.8)
	}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.9 || fit.Slope > 2.1 {
		t.Errorf("slope = %v, want ~2", fit.Slope)
	}
	if fit.R2 < 0.9 || fit.R2 > 1 {
		t.Errorf("R2 = %v, want 0.9..1", fit.R2)
	}
	// More noise lowers R2.
	var ys2 []float64
	for _, x := range xs {
		ys2 = append(ys2, 2*x+1+rng.NormFloat64()*6)
	}
	fit2, err := Linear(xs, ys2)
	if err != nil {
		t.Fatal(err)
	}
	if fit2.R2 >= fit.R2 {
		t.Errorf("noisier fit R2 %v should be below %v", fit2.R2, fit.R2)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{2}); err != ErrDegenerate {
		t.Errorf("single point: %v", err)
	}
	if _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrDegenerate {
		t.Errorf("zero x variance: %v", err)
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
	// Constant y: exact horizontal fit.
	fit, err := Linear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant y fit = %+v", fit)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("mean = %v", m)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-value stddev must be 0")
	}
	sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", sd)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if p := Pearson(xs, []float64{2, 4, 6, 8}); math.Abs(p-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", p)
	}
	if p := Pearson(xs, []float64{8, 6, 4, 2}); math.Abs(p+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", p)
	}
	if p := Pearson(xs, []float64{5, 5, 5, 5}); p != 0 {
		t.Errorf("zero variance correlation = %v", p)
	}
	if p := Pearson(xs, xs[:2]); p != 0 {
		t.Errorf("mismatched lengths = %v", p)
	}
}

// Property: R2 equals the squared Pearson correlation for any
// non-degenerate input.
func TestR2EqualsPearsonSquared(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = xs[i]*rng.Float64() + rng.NormFloat64()*3
		}
		fit, err := Linear(xs, ys)
		if err != nil {
			return true
		}
		r := Pearson(xs, ys)
		return math.Abs(fit.R2-r*r) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the least-squares line minimizes the residual sum of
// squares against small perturbations.
func TestLeastSquaresOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 100
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.5*xs[i] + rng.NormFloat64()*2
	}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	rss := func(slope, intercept float64) float64 {
		var s float64
		for i := range xs {
			r := ys[i] - (slope*xs[i] + intercept)
			s += r * r
		}
		return s
	}
	best := rss(fit.Slope, fit.Intercept)
	for _, d := range []float64{-0.01, 0.01} {
		if rss(fit.Slope+d, fit.Intercept) < best {
			t.Errorf("perturbed slope beats fit")
		}
		if rss(fit.Slope, fit.Intercept+d) < best {
			t.Errorf("perturbed intercept beats fit")
		}
	}
}
