package openstream

import (
	"github.com/openstream/aftermath/internal/hw"
	"github.com/openstream/aftermath/internal/trace"
)

// emitter writes trace records according to the Tracing configuration,
// capturing the first write error (the engine checks it once at the
// end rather than threading errors through every event handler).
type emitter struct {
	w        *trace.Writer
	cfg      *Config
	p        *Program
	firstErr error
}

func newEmitter(w *trace.Writer, cfg *Config, p *Program) *emitter {
	return &emitter{w: w, cfg: cfg, p: p}
}

func (em *emitter) err() error { return em.firstErr }

func (em *emitter) capture(err error) {
	if err != nil && em.firstErr == nil {
		em.firstErr = err
	}
}

// preamble writes topology, task types and counter descriptions.
func (em *emitter) preamble() error {
	if em.w == nil {
		return nil
	}
	m := em.cfg.Machine
	topo := trace.Topology{
		Name:     m.Name(),
		NumNodes: int32(m.NumNodes()),
	}
	topo.NodeOfCPU = make([]int32, m.NumCPUs())
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		topo.NodeOfCPU[cpu] = int32(m.NodeOfCPU(cpu))
	}
	topo.Distance = make([]int32, m.NumNodes()*m.NumNodes())
	for a := 0; a < m.NumNodes(); a++ {
		for b := 0; b < m.NumNodes(); b++ {
			topo.Distance[a*m.NumNodes()+b] = int32(m.Distance(a, b))
		}
	}
	if err := em.w.WriteTopology(topo); err != nil {
		return err
	}
	for i, td := range em.p.types {
		err := em.w.WriteTaskType(trace.TaskType{
			ID: trace.TypeID(i), Addr: td.addr, Name: td.name,
		})
		if err != nil {
			return err
		}
	}
	if em.cfg.Tracing.Counters {
		for _, cd := range []trace.CounterDesc{
			{ID: CounterIDBranchMisses, Name: trace.CounterBranchMisses, Monotonic: true},
			{ID: CounterIDCacheMisses, Name: trace.CounterCacheMisses, Monotonic: true},
		} {
			if err := em.w.WriteCounterDesc(cd); err != nil {
				return err
			}
		}
	}
	if em.cfg.Tracing.Rusage {
		for _, cd := range []trace.CounterDesc{
			{ID: CounterIDSystemTime, Name: trace.CounterOSSystemTime, Monotonic: true},
			{ID: CounterIDResidentKB, Name: trace.CounterResidentKB, Monotonic: true},
		} {
			if err := em.w.WriteCounterDesc(cd); err != nil {
				return err
			}
		}
	}
	// Zero samples at time 0 give every counter a baseline.
	ncpu := m.NumCPUs()
	for cpu := 0; cpu < ncpu; cpu++ {
		if em.cfg.Tracing.Counters {
			em.sample(int32(cpu), CounterIDBranchMisses, 0, 0)
			em.sample(int32(cpu), CounterIDCacheMisses, 0, 0)
		}
		if em.cfg.Tracing.Rusage {
			em.sample(int32(cpu), CounterIDSystemTime, 0, 0)
			em.sample(int32(cpu), CounterIDResidentKB, 0, 0)
		}
	}
	return em.firstErr
}

func (em *emitter) state(s trace.StateEvent) {
	if em.w == nil || !em.cfg.Tracing.States {
		return
	}
	em.capture(em.w.WriteState(s))
}

func (em *emitter) discrete(d trace.DiscreteEvent) {
	if em.w == nil || !em.cfg.Tracing.Discrete {
		return
	}
	em.capture(em.w.WriteDiscrete(d))
}

func (em *emitter) comm(c trace.CommEvent) {
	if em.w == nil || !em.cfg.Tracing.Comm {
		return
	}
	em.capture(em.w.WriteComm(c))
}

func (em *emitter) region(r trace.MemRegion) {
	if em.w == nil {
		return
	}
	em.capture(em.w.WriteRegion(r))
}

func (em *emitter) task(t trace.Task) {
	if em.w == nil {
		return
	}
	em.capture(em.w.WriteTask(t))
}

func (em *emitter) sample(cpu int32, counter trace.CounterID, t int64, v int64) {
	if em.w == nil {
		return
	}
	em.capture(em.w.WriteSample(trace.CounterSample{CPU: cpu, Counter: counter, Time: t, Value: v}))
}

// hwSamples emits the hardware counters of a worker at time t, as the
// runtime samples them immediately before and after task execution.
func (em *emitter) hwSamples(w *worker, t int64) {
	if em.w == nil || !em.cfg.Tracing.Counters {
		return
	}
	em.sample(w.id, CounterIDBranchMisses, t, w.branchMisses)
	em.sample(w.id, CounterIDCacheMisses, t, w.cacheMisses)
}

// rusageSamples emits the OS statistics counters of a worker at time t.
func (em *emitter) rusageSamples(w *worker, t int64, m *hw.Model) {
	if em.w == nil || !em.cfg.Tracing.Rusage {
		return
	}
	em.sample(w.id, CounterIDSystemTime, t, int64(m.CyclesToMicroseconds(w.sysTimeCycles)))
	em.sample(w.id, CounterIDResidentKB, t, w.residentKB)
}

// finalSamples closes every counter series at the makespan so derived
// counters cover the whole execution.
func (em *emitter) finalSamples(workers []worker, t int64) {
	if em.w == nil {
		return
	}
	for i := range workers {
		w := &workers[i]
		em.hwSamples(w, t)
		em.rusageSamples(w, t, &em.cfg.HW)
	}
}
