package openstream

import (
	"bytes"
	"testing"

	"github.com/openstream/aftermath/internal/topology"
	"github.com/openstream/aftermath/internal/trace"
)

// chainProgram builds a linear chain of n tasks, each reading its
// predecessor's output.
func chainProgram(t *testing.T, n int) *Program {
	b := NewBuilder()
	typ := b.Type("link")
	var prev RegionRef = -1
	for i := 0; i < n; i++ {
		out := b.NewRegion(4096)
		spec := TaskSpec{
			Type: typ, Compute: 10000,
			Writes:  []Access{{Region: out, Bytes: 4096}},
			Creator: Root,
		}
		if prev >= 0 {
			spec.Reads = []Access{{Region: prev, Bytes: 4096}}
		}
		prev = out
		b.Task(spec)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fanProgram builds one producer whose output is read by n consumers.
func fanProgram(t *testing.T, n int) *Program {
	b := NewBuilder()
	prod := b.Type("producer")
	cons := b.Type("consumer")
	out := b.NewRegion(64 * 1024)
	b.Task(TaskSpec{
		Type: prod, Compute: 5000,
		Writes: []Access{{Region: out, Bytes: 64 * 1024}}, Creator: Root,
	})
	for i := 0; i < n; i++ {
		b.Task(TaskSpec{
			Type: cons, Compute: 100000,
			Reads: []Access{{Region: out, Bytes: 64 * 1024}}, Creator: Root,
		})
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testConfig(m *topology.Machine) Config {
	cfg := DefaultConfig(m)
	cfg.Seed = 42
	return cfg
}

func TestAllTasksExecute(t *testing.T) {
	p := fanProgram(t, 100)
	res, err := Run(p, testConfig(topology.Small(2, 4)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 101 {
		t.Errorf("executed %d tasks, want 101", res.TasksExecuted)
	}
	if res.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
	if res.Seconds <= 0 {
		t.Error("seconds must be positive")
	}
}

func TestChainIsSequential(t *testing.T) {
	// A chain cannot overlap: makespan must be at least the sum of
	// task computes.
	const n = 50
	p := chainProgram(t, n)
	res, err := Run(p, testConfig(topology.Small(2, 4)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < n*10000 {
		t.Errorf("chain makespan %d below serial compute %d", res.Makespan, n*10000)
	}
}

func TestFanOutParallelizes(t *testing.T) {
	// 64 independent consumers on 8 CPUs must run roughly 8x faster
	// than on 1 CPU.
	p1 := fanProgram(t, 64)
	res1, err := Run(p1, testConfig(topology.Small(1, 1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	p8 := fanProgram(t, 64)
	res8, err := Run(p8, testConfig(topology.Small(2, 4)), nil)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(res1.Makespan) / float64(res8.Makespan)
	if speedup < 4 {
		t.Errorf("speedup on 8 CPUs = %.2f, want >= 4", speedup)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		p := fanProgram(t, 200)
		cfg := testConfig(topology.Small(4, 4))
		res, err := Run(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Steals != b.Steals {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestTraceEmission(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	p := fanProgram(t, 32)
	cfg := testConfig(topology.Small(2, 4))
	res, err := Run(p, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var (
		topoCount  int
		types      int
		tasks      int
		execStates int
		idleStates int
		reads      int
		writes     int
		regions    int
		samples    int
		lastEnd    int64
	)
	err = trace.Read(&buf, trace.Handler{
		Topology: func(trace.Topology) error { topoCount++; return nil },
		TaskType: func(trace.TaskType) error { types++; return nil },
		Task:     func(trace.Task) error { tasks++; return nil },
		State: func(s trace.StateEvent) error {
			switch s.State {
			case trace.StateTaskExec:
				execStates++
			case trace.StateIdle:
				idleStates++
			}
			if s.End > lastEnd {
				lastEnd = s.End
			}
			return nil
		},
		Comm: func(c trace.CommEvent) error {
			switch c.Kind {
			case trace.CommRead:
				reads++
			case trace.CommWrite:
				writes++
			}
			return nil
		},
		Region: func(trace.MemRegion) error { regions++; return nil },
		Sample: func(trace.CounterSample) error { samples++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if topoCount != 1 {
		t.Errorf("topology records = %d, want 1", topoCount)
	}
	if types != 2 {
		t.Errorf("task types = %d, want 2", types)
	}
	if tasks != 33 {
		t.Errorf("task records = %d, want 33", tasks)
	}
	if execStates != 33 {
		t.Errorf("exec states = %d, want 33", execStates)
	}
	if idleStates == 0 {
		t.Error("expected idle states")
	}
	if reads != 32 {
		t.Errorf("read events = %d, want 32", reads)
	}
	if writes != 1 {
		t.Errorf("write events = %d, want 1", writes)
	}
	if regions != 1 {
		t.Errorf("region records = %d, want 1", regions)
	}
	if samples == 0 {
		t.Error("expected counter samples")
	}
	if lastEnd != res.Makespan {
		t.Errorf("last state ends at %d, makespan %d", lastEnd, res.Makespan)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A task whose creator never runs because the creator depends on
	// the child's output is a cycle; Build must reject it.
	b := NewBuilder()
	typ := b.Type("x")
	r1 := b.NewRegion(64)
	r2 := b.NewRegion(64)
	t1 := b.Task(TaskSpec{
		Type: typ, Compute: 10,
		Reads:   []Access{{Region: r2, Bytes: 64}},
		Writes:  []Access{{Region: r1, Bytes: 64}},
		Creator: Root,
	})
	b.Task(TaskSpec{
		Type: typ, Compute: 10,
		Reads:   []Access{{Region: r1, Bytes: 64}},
		Writes:  []Access{{Region: r2, Bytes: 64}},
		Creator: t1,
	})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestBuilderValidation(t *testing.T) {
	// Double-written region.
	b := NewBuilder()
	typ := b.Type("x")
	r := b.NewRegion(64)
	b.Task(TaskSpec{Type: typ, Writes: []Access{{Region: r, Bytes: 64}}, Creator: Root})
	b.Task(TaskSpec{Type: typ, Writes: []Access{{Region: r, Bytes: 64}}, Creator: Root})
	if _, err := b.Build(); err == nil {
		t.Error("expected double-writer error")
	}

	// Read of an unwritten region.
	b = NewBuilder()
	typ = b.Type("x")
	r = b.NewRegion(64)
	b.Task(TaskSpec{Type: typ, Reads: []Access{{Region: r, Bytes: 64}}, Creator: Root})
	if _, err := b.Build(); err == nil {
		t.Error("expected unwritten-region error")
	}

	// Creator must precede child.
	b = NewBuilder()
	typ = b.Type("x")
	b.Task(TaskSpec{Type: typ, Creator: 5})
	if _, err := b.Build(); err == nil {
		t.Error("expected invalid-creator error")
	}

	// Type interning.
	b = NewBuilder()
	if b.Type("a") != b.Type("a") {
		t.Error("type interning broken")
	}
	if b.Type("a") == b.Type("b") {
		t.Error("distinct types must differ")
	}
}

func TestCreatorChain(t *testing.T) {
	// Root creates t1; t1 creates t2; t2 creates t3. All must run,
	// and creation order must be respected (children run after
	// creators).
	b := NewBuilder()
	typ := b.Type("x")
	t1 := b.Task(TaskSpec{Type: typ, Compute: 1000, Creator: Root})
	t2 := b.Task(TaskSpec{Type: typ, Compute: 1000, Creator: t1})
	b.Task(TaskSpec{Type: typ, Compute: 1000, Creator: t2})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, testConfig(topology.Small(1, 2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 3 {
		t.Errorf("executed %d, want 3", res.TasksExecuted)
	}
	// Serial chain through creation: at least 3 computes.
	if res.Makespan < 3000 {
		t.Errorf("makespan %d too small for serial creation chain", res.Makespan)
	}
}

func TestFirstTouchPlacement(t *testing.T) {
	// With NUMA-aware scheduling, init tasks spread round-robin, so
	// backings land on distinct nodes.
	b := NewBuilder()
	init := b.Type("init")
	nregions := 16
	for i := 0; i < nregions; i++ {
		r := b.NewRegion(1 << 20)
		b.Task(TaskSpec{Type: init, Compute: 100000, Writes: []Access{{Region: r, Bytes: 1 << 20}}, Creator: Root})
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	cfg := testConfig(topology.Small(4, 2))
	cfg.Sched = SchedNUMA
	if _, err := Run(p, cfg, w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	nodes := make(map[int32]int)
	err = trace.Read(&buf, trace.Handler{Region: func(r trace.MemRegion) error {
		nodes[r.Node]++
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) < 3 {
		t.Errorf("NUMA-aware init spread over %d nodes, want >= 3 of 4 (%v)", len(nodes), nodes)
	}
}

func TestNUMASchedulingImprovesLocality(t *testing.T) {
	// Producer/consumer pairs: with NUMA-aware scheduling consumers
	// run where their data is; makespan must beat random stealing.
	build := func() *Program {
		b := NewBuilder()
		prod := b.Type("produce")
		cons := b.Type("consume")
		const pairs = 64
		for i := 0; i < pairs; i++ {
			r := b.NewRegion(1 << 20)
			pt := b.Task(TaskSpec{Type: prod, Compute: 50000, Writes: []Access{{Region: r, Bytes: 1 << 20}}, Creator: Root})
			// Chain of consumers keeps data hot on its node.
			prev := r
			for j := 0; j < 4; j++ {
				out := b.NewRegion(1 << 20)
				pt = b.Task(TaskSpec{
					Type: cons, Compute: 50000,
					Reads:   []Access{{Region: prev, Bytes: 1 << 20}},
					Writes:  []Access{{Region: out, Bytes: 1 << 20}},
					Creator: pt,
				})
				prev = out
			}
		}
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	m := topology.Opteron6282SE()
	cfgRand := testConfig(m)
	cfgRand.Sched = SchedRandom
	resRand, err := Run(build(), cfgRand, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfgNUMA := testConfig(m)
	cfgNUMA.Sched = SchedNUMA
	resNUMA, err := Run(build(), cfgNUMA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resNUMA.Makespan >= resRand.Makespan {
		t.Errorf("NUMA-aware makespan %d not better than random %d",
			resNUMA.Makespan, resRand.Makespan)
	}
}

func TestStealsHappen(t *testing.T) {
	p := fanProgram(t, 128)
	res, err := Run(p, testConfig(topology.Small(2, 4)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Error("expected steals with random scheduling and a fan-out program")
	}
	if res.StealAttempts < res.Steals {
		t.Error("attempts must be >= successful steals")
	}
}

func TestStateAccounting(t *testing.T) {
	p := fanProgram(t, 32)
	res, err := Run(p, testConfig(topology.Small(2, 2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.StateCycles[trace.StateTaskExec] == 0 {
		t.Error("no task execution time accounted")
	}
	if res.StateCycles[trace.StateTaskCreate] == 0 {
		t.Error("no creation time accounted")
	}
	// Total accounted time can't exceed CPUs * makespan.
	var total int64
	for _, c := range res.StateCycles {
		total += c
	}
	if limit := res.Makespan * 4; total > limit {
		t.Errorf("accounted %d cycles > CPUs*makespan %d", total, limit)
	}
}

func TestPageFaultAccounting(t *testing.T) {
	b := NewBuilder()
	typ := b.Type("init")
	r := b.NewRegion(1 << 20) // 256 pages
	b.Task(TaskSpec{Type: typ, Compute: 100, Writes: []Access{{Region: r, Bytes: 1 << 20}}, Creator: Root})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, testConfig(topology.Small(1, 1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesFaulted != 256 {
		t.Errorf("pages faulted = %d, want 256", res.PagesFaulted)
	}
	if res.SystemTimeCycles == 0 {
		t.Error("page faults must cost system time")
	}
}

func TestRunWithoutMachine(t *testing.T) {
	p := fanProgram(t, 1)
	if _, err := Run(p, Config{}, nil); err == nil {
		t.Error("expected config validation error")
	}
}
