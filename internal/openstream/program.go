// Package openstream simulates an OpenStream-like run-time system for
// dependent task graphs on a NUMA machine, and emits Aftermath traces.
//
// The model follows the paper's setting: applications expose dataflow
// dependences between dynamically created tasks through reads and
// writes of memory regions; the run-time schedules ready tasks over
// per-worker deques with work stealing, places memory on NUMA nodes,
// and interacts with the operating system through page faults
// (Sections III-V).
//
// Memory is modelled at two levels, mirroring the paper's trace design
// (Section VI-A): a backing is a physically allocated address range
// whose NUMA placement is recorded once; a region is a dataflow version
// of a backing, written by exactly one task and read by its dependents.
// Traces record accesses by backing address; dependences are recovered
// by the analysis layer from the access order, exactly as Aftermath
// reconstructs task graphs from read and write accesses (Section III-A).
package openstream

import (
	"fmt"
)

// TypeRef identifies a task type within a Program.
type TypeRef int32

// TaskRef identifies a task within a Program.
type TaskRef int32

// Root is the pseudo-task representing the program's control thread
// (the OpenStream main function). Tasks created by Root are created
// sequentially by worker 0 at program start.
const Root TaskRef = -1

// BackingRef identifies an allocated memory range within a Program.
type BackingRef int32

// RegionRef identifies a dataflow version of a backing.
type RegionRef int32

// Access describes a task's access to a region: Bytes bytes read from
// (or written to) the region's backing. Bytes may be smaller than the
// backing (e.g. reading only a halo border of a neighbouring block).
type Access struct {
	Region RegionRef
	Bytes  int64
}

// TaskSpec describes one task.
type TaskSpec struct {
	// Type is the task's work function.
	Type TypeRef
	// Compute is the pure computation cost in cycles, excluding
	// memory traffic, page faults and branch misprediction stalls,
	// which the engine adds from the hardware model.
	Compute int64
	// BranchMisses is the number of mispredicted branches the task
	// executes; each costs hw.Model.BranchMissPenaltyCycles.
	BranchMisses int64
	// Reads are the task's input accesses. The task becomes ready
	// when the writer of every read region has completed.
	Reads []Access
	// Writes are the task's output accesses. Each region may be
	// written by exactly one task.
	Writes []Access
	// Creator is the task that creates this one (Root for tasks
	// created by the control thread). A task is created — and can
	// become ready — only after its creator's execution completes.
	Creator TaskRef
	// CreateAfter optionally gates this task's creation on the
	// resolution of regions: the creator suspends its (sequential)
	// creation sequence until every listed region has been written.
	// This models control dependences such as a taskwait between
	// initialization and computation in the control program; unlike
	// Reads, it leaves no data-dependence trace, so reconstructed
	// task graphs do not see it (paper Figures 2 vs 5).
	CreateAfter []RegionRef
}

type typeDef struct {
	name string
	addr uint64
}

type backingDef struct {
	size int64
}

// regionDef is one dataflow version of a backing. Versions carry
// distinct addresses, modelling OpenStream's renaming: each version
// lives in its own buffer, while NUMA placement and page faults are
// properties of the physically allocated backing.
type regionDef struct {
	backing BackingRef
	writer  TaskRef // filled during Build; -1 when unwritten
	addr    uint64
}

// Program is an immutable dependent-task program, built with a Builder
// and executed by Run.
type Program struct {
	types    []typeDef
	backings []backingDef
	regions  []regionDef
	tasks    []TaskSpec
	// children[t] lists tasks created by task t, in creation order.
	children [][]TaskRef
	// rootChildren lists tasks created by the control thread.
	rootChildren []TaskRef
	// readers[r] lists tasks reading region r.
	readers [][]TaskRef
	// gated[r] lists tasks whose creation is gated on region r.
	gated [][]TaskRef
}

// NumTasks returns the number of tasks in the program.
func (p *Program) NumTasks() int { return len(p.tasks) }

// NumRegions returns the number of dataflow regions.
func (p *Program) NumRegions() int { return len(p.regions) }

// NumBackings returns the number of allocated memory ranges.
func (p *Program) NumBackings() int { return len(p.backings) }

// TypeName returns the name of a task type.
func (p *Program) TypeName(t TypeRef) string { return p.types[t].name }

// Task returns the spec of a task.
func (p *Program) Task(t TaskRef) TaskSpec { return p.tasks[t] }

// Builder incrementally constructs a Program.
type Builder struct {
	p          Program
	typeByName map[string]TypeRef
	nextAddr   uint64
	err        error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		typeByName: make(map[string]TypeRef),
		nextAddr:   backingAddrBase,
	}
}

// taskTypeAddrBase is where simulated work functions live; each type
// gets a distinct, symbol-table-friendly address.
const taskTypeAddrBase = 0x401000

// backingAddrBase is the start of the simulated data address space.
const backingAddrBase = 0x7f0000000000

// Type interns a task type by name and returns its reference. Repeated
// calls with the same name return the same reference.
func (b *Builder) Type(name string) TypeRef {
	if t, ok := b.typeByName[name]; ok {
		return t
	}
	t := TypeRef(len(b.p.types))
	b.p.types = append(b.p.types, typeDef{
		name: name,
		addr: taskTypeAddrBase + uint64(t)*0x40,
	})
	b.typeByName[name] = t
	return t
}

// Backing allocates a memory range of the given size. Its NUMA
// placement is decided by the run-time when it is first written
// (first-touch).
func (b *Builder) Backing(size int64) BackingRef {
	if size <= 0 {
		b.fail(fmt.Errorf("openstream: backing size %d must be positive", size))
		size = 1
	}
	ref := BackingRef(len(b.p.backings))
	b.p.backings = append(b.p.backings, backingDef{size: size})
	return ref
}

// Version creates a new dataflow version of a backing. Each version
// must be written by exactly one task; readers of the version depend
// on that task. Versions get distinct, page-aligned addresses.
func (b *Builder) Version(bk BackingRef) RegionRef {
	if int(bk) < 0 || int(bk) >= len(b.p.backings) {
		b.fail(fmt.Errorf("openstream: invalid backing %d", bk))
		bk = 0
	}
	const page = 4096
	r := RegionRef(len(b.p.regions))
	addr := b.nextAddr
	b.nextAddr += uint64((b.p.backings[bk].size + page - 1) / page * page)
	b.p.regions = append(b.p.regions, regionDef{backing: bk, writer: -1, addr: addr})
	return r
}

// NewRegion allocates a fresh backing and returns its first version —
// a convenience for single-version data.
func (b *Builder) NewRegion(size int64) RegionRef {
	return b.Version(b.Backing(size))
}

// Task adds a task to the program and returns its reference.
func (b *Builder) Task(spec TaskSpec) TaskRef {
	t := TaskRef(len(b.p.tasks))
	if int(spec.Type) < 0 || int(spec.Type) >= len(b.p.types) {
		b.fail(fmt.Errorf("openstream: task %d has invalid type %d", t, spec.Type))
		return t
	}
	for _, a := range append(append([]Access{}, spec.Reads...), spec.Writes...) {
		if int(a.Region) < 0 || int(a.Region) >= len(b.p.regions) {
			b.fail(fmt.Errorf("openstream: task %d accesses invalid region %d", t, a.Region))
			return t
		}
		if a.Bytes <= 0 {
			b.fail(fmt.Errorf("openstream: task %d has non-positive access size %d", t, a.Bytes))
			return t
		}
	}
	for _, w := range spec.Writes {
		reg := &b.p.regions[w.Region]
		if reg.writer != -1 {
			b.fail(fmt.Errorf("openstream: region %d written by both task %d and task %d",
				w.Region, reg.writer, t))
			return t
		}
		reg.writer = t
	}
	if spec.Creator != Root && (spec.Creator < 0 || int(spec.Creator) >= len(b.p.tasks)) {
		b.fail(fmt.Errorf("openstream: task %d has invalid creator %d (creators must precede their children)",
			t, spec.Creator))
		return t
	}
	b.p.tasks = append(b.p.tasks, spec)
	return t
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the program and freezes it. After Build the Builder
// must not be reused.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := &b.p
	p.children = make([][]TaskRef, len(p.tasks))
	p.readers = make([][]TaskRef, len(p.regions))
	for i := range p.tasks {
		t := TaskRef(i)
		spec := &p.tasks[i]
		if spec.Creator == Root {
			p.rootChildren = append(p.rootChildren, t)
		} else {
			p.children[spec.Creator] = append(p.children[spec.Creator], t)
		}
		for _, a := range spec.Reads {
			if p.regions[a.Region].writer == -1 {
				return nil, fmt.Errorf("openstream: task %d reads region %d which no task writes",
					t, a.Region)
			}
			p.readers[a.Region] = append(p.readers[a.Region], t)
		}
		for _, rg := range spec.CreateAfter {
			if int(rg) < 0 || int(rg) >= len(p.regions) {
				return nil, fmt.Errorf("openstream: task %d gated on invalid region %d", t, rg)
			}
			if p.regions[rg].writer == -1 {
				return nil, fmt.Errorf("openstream: task %d gated on region %d which no task writes",
					t, rg)
			}
			if p.gated == nil {
				p.gated = make([][]TaskRef, len(p.regions))
			}
			p.gated[rg] = append(p.gated[rg], t)
		}
	}
	// Reject self-dependences; deeper cycles are impossible to
	// express because creators and writers must precede their
	// dependents is NOT enforced by construction for reads, so run a
	// cheap cycle check via Kahn's algorithm over dependence edges.
	if err := p.checkAcyclic(); err != nil {
		return nil, err
	}
	return p, nil
}

// checkAcyclic verifies the dependence graph (region writer -> reader
// edges plus creator -> child edges) has no cycles.
func (p *Program) checkAcyclic() error {
	n := len(p.tasks)
	indeg := make([]int32, n)
	for i := range p.tasks {
		spec := &p.tasks[i]
		indeg[i] += int32(len(spec.Reads)) + int32(len(spec.CreateAfter))
		if spec.Creator != Root {
			indeg[i]++
		}
	}
	queue := make([]TaskRef, 0, n)
	for i := range indeg {
		if indeg[i] == 0 {
			queue = append(queue, TaskRef(i))
		}
	}
	visited := 0
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		for _, c := range p.children[t] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
		for _, w := range p.tasks[t].Writes {
			for _, r := range p.readers[w.Region] {
				indeg[r]--
				if indeg[r] == 0 {
					queue = append(queue, r)
				}
			}
			if p.gated != nil {
				for _, g := range p.gated[w.Region] {
					indeg[g]--
					if indeg[g] == 0 {
						queue = append(queue, g)
					}
				}
			}
		}
	}
	if visited != n {
		return fmt.Errorf("openstream: dependence graph has a cycle (%d of %d tasks reachable)", visited, n)
	}
	return nil
}
