package openstream

import (
	"bytes"
	"testing"

	"github.com/openstream/aftermath/internal/core"
	"github.com/openstream/aftermath/internal/trace"
)

// runAndLoad simulates with tracing into memory and loads the trace.
func runAndLoad(t *testing.T, p *Program, cfg Config) (*core.Trace, Result, error) {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	res, err := Run(p, cfg, w)
	if err != nil {
		return nil, res, err
	}
	if err := w.Flush(); err != nil {
		return nil, res, err
	}
	tr, err := core.FromReader(&buf)
	return tr, res, err
}

// uint64ID converts a TaskRef to its trace task ID.
func uint64ID(t TaskRef) trace.TaskID { return traceTaskID(t) }
