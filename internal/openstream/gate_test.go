package openstream

import (
	"testing"

	"github.com/openstream/aftermath/internal/topology"
)

// TestCreateAfterGatesCreation verifies the control-dependence gate:
// a gated task (and everything created after it) cannot start before
// the gating regions resolve, even when its data inputs are ready.
func TestCreateAfterGatesCreation(t *testing.T) {
	b := NewBuilder()
	typ := b.Type("x")
	slow := b.NewRegion(64)
	b.Task(TaskSpec{ // slow producer
		Type: typ, Compute: 1_000_000,
		Writes: []Access{{Region: slow, Bytes: 64}}, Creator: Root,
	})
	out := b.NewRegion(64)
	gated := b.Task(TaskSpec{ // no data deps, but gated on the slow task
		Type: typ, Compute: 1000,
		Writes:      []Access{{Region: out, Bytes: 64}},
		Creator:     Root,
		CreateAfter: []RegionRef{slow},
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, res, err := runAndLoad(t, p, testConfig(topology.Small(2, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 2 {
		t.Fatalf("executed %d tasks", res.TasksExecuted)
	}
	g, ok := tr.TaskByID(uint64ID(gated))
	if !ok {
		t.Fatal("gated task missing from trace")
	}
	if g.ExecStart < 1_000_000 {
		t.Errorf("gated task started at %d, before the gate resolved at ~1M", g.ExecStart)
	}
}

// TestCreateAfterWhileHelping verifies that the creator executes other
// tasks while its creation sequence is suspended (work-first taskwait).
func TestCreateAfterWhileHelping(t *testing.T) {
	b := NewBuilder()
	typ := b.Type("x")
	// Many parallel init tasks, then a gated phase-two task.
	var inits []RegionRef
	for i := 0; i < 20; i++ {
		r := b.NewRegion(64)
		inits = append(inits, r)
		b.Task(TaskSpec{Type: typ, Compute: 50_000,
			Writes: []Access{{Region: r, Bytes: 64}}, Creator: Root})
	}
	out := b.NewRegion(64)
	b.Task(TaskSpec{Type: typ, Compute: 1000,
		Writes: []Access{{Region: out, Bytes: 64}}, Creator: Root,
		CreateAfter: inits})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// On a single CPU the creator itself must execute the inits,
	// otherwise the run deadlocks.
	res, err := Run(p, testConfig(topology.Small(1, 1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 21 {
		t.Errorf("executed %d of 21", res.TasksExecuted)
	}
}

func TestCreateAfterValidation(t *testing.T) {
	b := NewBuilder()
	typ := b.Type("x")
	r := b.NewRegion(64)
	b.Task(TaskSpec{Type: typ, Compute: 1, Creator: Root, CreateAfter: []RegionRef{r}})
	if _, err := b.Build(); err == nil {
		t.Error("gate on unwritten region accepted")
	}

	// Gate cycles are rejected: a task gated on its own output.
	b = NewBuilder()
	typ = b.Type("x")
	r = b.NewRegion(64)
	b.Task(TaskSpec{Type: typ, Compute: 1,
		Writes: []Access{{Region: r, Bytes: 64}}, Creator: Root,
		CreateAfter: []RegionRef{r}})
	if _, err := b.Build(); err == nil {
		t.Error("self-gate cycle accepted")
	}
}
