package openstream

import (
	"fmt"

	"github.com/openstream/aftermath/internal/sim"
	"github.com/openstream/aftermath/internal/topology"
	"github.com/openstream/aftermath/internal/trace"
)

// creationChunk is the number of task creations a worker performs per
// simulation event. Creations within a chunk take effect at the end of
// the chunk; the chunk duration is creations * Overheads.TaskCreate.
const creationChunk = 16

// worker models one worker thread pinned to a CPU.
type worker struct {
	id   int32
	node int32
	// deque is the worker's ready-task deque: the owner pushes and
	// pops at the tail (LIFO, for locality), thieves steal from the
	// head (FIFO), as in classic work-first work stealing.
	deque []TaskRef
	head  int
	busy  bool
	// freeSince marks the beginning of the current idle span.
	freeSince int64
	// Cumulative per-CPU counters.
	branchMisses  int64
	cacheMisses   int64
	sysTimeCycles int64
	residentKB    int64
	// pending holds a creation sequence suspended on a gate
	// (TaskSpec.CreateAfter), resumed once the gate resolves.
	pending *pendingCreate
}

// pendingCreate is a suspended creation sequence: the creator reached
// children[idx], whose creation gate has not yet resolved.
type pendingCreate struct {
	children []TaskRef
	idx      int
}

func (w *worker) qlen() int { return len(w.deque) - w.head }

type engine struct {
	cfg  *Config
	p    *Program
	s    *sim.Simulator
	em   *emitter
	mach *topology.Machine
	ncpu int

	// Per-task state.
	created    []bool
	unresolved []int32
	finished   []bool
	enqueued   []bool
	// gateRemaining[t] counts unresolved CreateAfter regions.
	gateRemaining []int32
	// gateOwner[t] is the worker whose creation sequence is
	// suspended waiting for task t's gate, or -1.
	gateOwner []int32
	// Per-region / per-backing state.
	regionDone []bool
	placeNode  []int32 // per backing; -1 = unplaced
	// Workers and scheduling state.
	workers         []worker
	nonEmpty        []int32 // worker ids with non-empty deques
	nonEmptyPos     []int32 // worker -> index in nonEmpty, -1 if absent
	nonEmptyPerNode []int32
	parked          []int32 // FIFO of parked workers (lazily cleaned)
	isParked        []bool
	nodesByDist     [][]int // per node: nodes ordered by distance
	rrPerNode       []int32
	rrAll           int32
	readyCount      int
	activeRemote    int
	activeFaulters  int
	executed        int
	maxTime         int64
	res             Result
}

// Run executes the program under the given configuration, writing
// trace records to w (which may be nil to skip tracing entirely, e.g.
// for parameter sweeps that only need the makespan).
func Run(p *Program, cfg Config, w *trace.Writer) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	e := &engine{
		cfg:  &cfg,
		p:    p,
		s:    sim.New(cfg.Seed),
		mach: cfg.Machine,
		ncpu: cfg.Machine.NumCPUs(),
	}
	e.em = newEmitter(w, &cfg, p)
	e.init()
	if err := e.em.preamble(); err != nil {
		return Result{}, err
	}

	// Worker 0 plays the control thread: it creates the root tasks
	// starting at time zero, then joins the worker pool.
	e.workers[0].busy = true
	e.createChildren(&e.workers[0], e.p.rootChildren, 0)
	e.s.Run()

	return e.finish()
}

func (e *engine) init() {
	nt, nr, nb := len(e.p.tasks), len(e.p.regions), len(e.p.backings)
	e.created = make([]bool, nt)
	e.finished = make([]bool, nt)
	e.enqueued = make([]bool, nt)
	e.unresolved = make([]int32, nt)
	e.gateRemaining = make([]int32, nt)
	e.gateOwner = make([]int32, nt)
	for i := range e.p.tasks {
		e.unresolved[i] = int32(len(e.p.tasks[i].Reads))
		e.gateRemaining[i] = int32(len(e.p.tasks[i].CreateAfter))
		e.gateOwner[i] = -1
	}
	e.regionDone = make([]bool, nr)
	e.placeNode = make([]int32, nb)
	for i := range e.placeNode {
		e.placeNode[i] = -1
	}
	e.workers = make([]worker, e.ncpu)
	e.nonEmptyPos = make([]int32, e.ncpu)
	e.isParked = make([]bool, e.ncpu)
	for i := range e.workers {
		e.workers[i] = worker{id: int32(i), node: int32(e.mach.NodeOfCPU(i))}
		e.nonEmptyPos[i] = -1
		if i != 0 {
			e.parkWorker(&e.workers[i])
		}
	}
	e.nonEmptyPerNode = make([]int32, e.mach.NumNodes())
	e.rrPerNode = make([]int32, e.mach.NumNodes())
	e.nodesByDist = make([][]int, e.mach.NumNodes())
	for n := range e.nodesByDist {
		e.nodesByDist[n] = e.mach.NodesByDistance(n)
	}
	e.res.StateCycles = make([]int64, trace.NumWorkerStates)
}

func (e *engine) finish() (Result, error) {
	if e.executed != len(e.p.tasks) {
		return Result{}, fmt.Errorf("openstream: execution stalled: %d of %d tasks ran "+
			"(unreachable tasks or broken creator chain)", e.executed, len(e.p.tasks))
	}
	// Close trailing idle spans and counters at the makespan.
	for i := range e.workers {
		w := &e.workers[i]
		if !w.busy && w.freeSince < e.maxTime {
			e.emitState(w, trace.StateIdle, w.freeSince, e.maxTime, trace.NoTask)
		}
	}
	e.em.finalSamples(e.workers, e.maxTime)
	if err := e.em.err(); err != nil {
		return Result{}, err
	}
	e.res.Makespan = e.maxTime
	e.res.TasksExecuted = e.executed
	e.res.Seconds = e.cfg.HW.CyclesToSeconds(e.maxTime)
	return e.res, nil
}

// --- deque and scheduling-set maintenance ---

func (e *engine) markNonEmpty(w *worker) {
	if e.nonEmptyPos[w.id] >= 0 {
		return
	}
	e.nonEmptyPos[w.id] = int32(len(e.nonEmpty))
	e.nonEmpty = append(e.nonEmpty, w.id)
	e.nonEmptyPerNode[w.node]++
}

func (e *engine) markEmpty(w *worker) {
	pos := e.nonEmptyPos[w.id]
	if pos < 0 {
		return
	}
	last := e.nonEmpty[len(e.nonEmpty)-1]
	e.nonEmpty[pos] = last
	e.nonEmptyPos[last] = pos
	e.nonEmpty = e.nonEmpty[:len(e.nonEmpty)-1]
	e.nonEmptyPos[w.id] = -1
	e.nonEmptyPerNode[w.node]--
}

func (e *engine) pushTask(w *worker, t TaskRef) {
	w.deque = append(w.deque, t)
	e.readyCount++
	e.markNonEmpty(w)
}

func (e *engine) popTail(w *worker) (TaskRef, bool) {
	if w.qlen() == 0 {
		return 0, false
	}
	t := w.deque[len(w.deque)-1]
	w.deque = w.deque[:len(w.deque)-1]
	e.afterPop(w)
	return t, true
}

func (e *engine) popHead(w *worker) (TaskRef, bool) {
	if w.qlen() == 0 {
		return 0, false
	}
	t := w.deque[w.head]
	w.head++
	e.afterPop(w)
	return t, true
}

func (e *engine) afterPop(w *worker) {
	e.readyCount--
	if w.qlen() == 0 {
		w.deque = w.deque[:0]
		w.head = 0
		e.markEmpty(w)
	}
}

// --- parking and wakeups ---

func (e *engine) parkWorker(w *worker) {
	if e.isParked[w.id] {
		return
	}
	e.isParked[w.id] = true
	e.parked = append(e.parked, w.id)
}

// wakeOne wakes the preferred worker if it is parked, otherwise the
// longest-parked worker. Wakes are lossy by design: a woken worker
// that finds nothing parks again.
func (e *engine) wakeOne(preferred int32) {
	var id int32 = -1
	if e.isParked[preferred] {
		id = preferred
		e.isParked[preferred] = false
	} else {
		for len(e.parked) > 0 {
			cand := e.parked[0]
			e.parked = e.parked[1:]
			if e.isParked[cand] {
				id = cand
				e.isParked[cand] = false
				break
			}
		}
	}
	if id < 0 {
		return
	}
	w := &e.workers[id]
	e.s.After(e.cfg.Overhead.WakeLatency, func() { e.seekWork(w) })
}

// --- task readiness ---

// taskReady is called when task t has been created and all its inputs
// are resolved. byWorker is the worker whose activity made it ready.
func (e *engine) taskReady(t TaskRef, byWorker *worker) {
	if e.enqueued[t] {
		return
	}
	e.enqueued[t] = true
	target := e.chooseWorker(t, byWorker)
	e.em.discrete(trace.DiscreteEvent{
		CPU: byWorker.id, Kind: trace.EventTaskReady, Time: e.s.Now(), Arg: taskArg(t),
	})
	e.pushTask(&e.workers[target], t)
	e.wakeOne(target)
}

// chooseWorker implements the enqueue side of the scheduling policy.
func (e *engine) chooseWorker(t TaskRef, byWorker *worker) int32 {
	if e.cfg.Sched == SchedRandom {
		return byWorker.id
	}
	// NUMA-aware: enqueue on the node holding most input bytes.
	spec := &e.p.tasks[t]
	var bytesPerNode map[int32]int64
	var bestNode int32 = -1
	var bestBytes int64
	for _, a := range spec.Reads {
		bk := e.p.regions[a.Region].backing
		node := e.placeNode[bk]
		if node < 0 {
			continue
		}
		if bytesPerNode == nil {
			bytesPerNode = make(map[int32]int64, 4)
		}
		bytesPerNode[node] += a.Bytes
		if bytesPerNode[node] > bestBytes || (bytesPerNode[node] == bestBytes && node < bestNode) {
			bestBytes = bytesPerNode[node]
			bestNode = node
		}
	}
	if bestNode < 0 {
		// No placed inputs (e.g. initialization tasks): spread
		// round-robin across the whole machine so first-touch
		// distributes data over all nodes.
		w := e.rrAll % int32(e.ncpu)
		e.rrAll++
		return w
	}
	cpus := e.mach.CPUsOfNode(int(bestNode))
	idx := e.rrPerNode[bestNode] % int32(len(cpus))
	e.rrPerNode[bestNode]++
	return int32(cpus[idx])
}

// --- the worker loop ---

// seekWork is the worker's scheduling loop entry: resume a gated
// creation sequence, take local work, steal, or park. A creator whose
// gate is still closed keeps executing tasks — the work-first
// semantics of a taskwait in the control program.
func (e *engine) seekWork(w *worker) {
	if w.busy {
		return // stale wakeup
	}
	if p := w.pending; p != nil && e.gateRemaining[p.children[p.idx]] == 0 {
		w.pending = nil
		e.gateOwner[p.children[p.idx]] = -1
		e.createChildren(w, p.children[p.idx:], e.s.Now())
		return
	}
	if t, ok := e.popTail(w); ok {
		e.startExec(w, t)
		return
	}
	if e.readyCount > 0 {
		e.attemptSteal(w)
		return
	}
	e.parkWorker(w)
}

// attemptSteal picks a victim, pays the probe cost, then tries to take
// the head of the victim's deque.
func (e *engine) attemptSteal(w *worker) {
	victim := e.pickVictim(w)
	if victim < 0 {
		e.parkWorker(w)
		return
	}
	// Model failed probes of empty deques before finding the victim:
	// with fewer non-empty deques, a random thief probes longer.
	fails := int64(0)
	if e.cfg.Sched == SchedRandom {
		p := float64(len(e.nonEmpty)) / float64(e.ncpu)
		for fails < 8 && e.s.Rand().Float64() > p {
			fails++
		}
	}
	e.res.StealAttempts += fails + 1
	dist := int64(e.mach.Distance(int(w.node), int(e.workers[victim].node)))
	cost := e.cfg.Overhead.StealAttempt*(fails+1) + e.cfg.Overhead.StealHop*dist
	vw := &e.workers[victim]
	e.s.After(cost, func() { e.completeSteal(w, vw) })
}

func (e *engine) completeSteal(w, victim *worker) {
	if w.busy {
		return
	}
	t, ok := e.popHead(victim)
	if !ok {
		// The victim was drained while we were probing; try again.
		e.seekWork(w)
		return
	}
	e.res.Steals++
	now := e.s.Now()
	e.em.discrete(trace.DiscreteEvent{CPU: w.id, Kind: trace.EventSteal, Time: now, Arg: taskArg(t)})
	e.em.comm(trace.CommEvent{
		Kind: trace.CommSteal, CPU: w.id, SrcCPU: victim.id, Time: now, Task: traceTaskID(t),
	})
	e.startExec(w, t)
}

// pickVictim returns a worker id with a non-empty deque according to
// the scheduling policy, or -1 if none exists.
func (e *engine) pickVictim(w *worker) int32 {
	if len(e.nonEmpty) == 0 {
		return -1
	}
	if e.cfg.Sched == SchedRandom {
		return e.nonEmpty[e.s.Rand().Intn(len(e.nonEmpty))]
	}
	// NUMA-aware: nearest node with a non-empty deque.
	for _, node := range e.nodesByDist[w.node] {
		if e.nonEmptyPerNode[node] == 0 {
			continue
		}
		cpus := e.mach.CPUsOfNode(node)
		off := e.s.Rand().Intn(len(cpus))
		for i := range cpus {
			cpu := cpus[(off+i)%len(cpus)]
			if e.nonEmptyPos[cpu] >= 0 {
				return int32(cpu)
			}
		}
	}
	return -1
}

// startExec begins executing task t on worker w at the current time.
func (e *engine) startExec(w *worker, t TaskRef) {
	now := e.s.Now()
	if now > w.freeSince {
		e.emitState(w, trace.StateIdle, w.freeSince, now, trace.NoTask)
	}
	w.busy = true
	spec := &e.p.tasks[t]
	hwm := &e.cfg.HW
	load := float64(e.activeRemote) / float64(e.ncpu)

	// Memory cost of reads, and NUMA accounting.
	var memCycles, totalBytes, remoteBytes, lines int64
	for _, a := range spec.Reads {
		bk := e.p.regions[a.Region].backing
		node := e.placeNode[bk]
		dist := 0
		if node >= 0 {
			dist = e.mach.Distance(int(w.node), int(node))
		}
		memCycles += hwm.MemCost(a.Bytes, dist, load)
		totalBytes += a.Bytes
		lines += hwm.Lines(a.Bytes)
		if dist > 0 {
			remoteBytes += a.Bytes
		}
	}

	// Writes: place unplaced backings (first touch), charge page
	// faults as system time, then pay the write traffic. Each
	// written version gets a region record carrying its backing's
	// placement, so analysis localizes accesses by address alone.
	var faultCycles, faultedPages, residentDeltaKB int64
	for _, a := range spec.Writes {
		reg := &e.p.regions[a.Region]
		bk := reg.backing
		bd := &e.p.backings[bk]
		if e.placeNode[bk] < 0 {
			e.placeNode[bk] = w.node
			pages := hwm.Pages(bd.size)
			faultCycles += hwm.FaultCost(pages, e.activeFaulters+1)
			faultedPages += pages
			residentDeltaKB += (bd.size + 1023) / 1024
			e.em.discrete(trace.DiscreteEvent{
				CPU: w.id, Kind: trace.EventPageFault, Time: now, Arg: reg.addr,
			})
		}
		e.em.region(trace.MemRegion{
			ID: trace.RegionID(a.Region) + 1, Addr: reg.addr,
			Size: uint64(bd.size), Node: e.placeNode[bk],
		})
		dist := e.mach.Distance(int(w.node), int(e.placeNode[bk]))
		memCycles += hwm.MemCost(a.Bytes, dist, load)
		totalBytes += a.Bytes
		lines += hwm.Lines(a.Bytes)
		if dist > 0 {
			remoteBytes += a.Bytes
		}
	}

	duration := spec.Compute + memCycles + faultCycles + hwm.BranchMissCost(spec.BranchMisses)
	if duration < 1 {
		duration = 1
	}

	remoteHeavy := remoteBytes*2 > totalBytes
	if remoteHeavy {
		e.activeRemote++
	}
	faulting := faultCycles > 0
	if faulting {
		e.activeFaulters++
	}
	e.res.PagesFaulted += faultedPages
	e.res.SystemTimeCycles += faultCycles

	// Counter samples immediately before execution (Section V).
	e.em.hwSamples(w, now)
	// Read accesses are recorded at execution start.
	for _, a := range spec.Reads {
		e.em.comm(trace.CommEvent{
			Kind: trace.CommRead, CPU: w.id, SrcCPU: -1, Time: now,
			Task: traceTaskID(t), Addr: e.p.regions[a.Region].addr, Size: uint64(a.Bytes),
		})
	}
	e.emitState(w, trace.StateTaskExec, now, now+duration, traceTaskID(t))

	end := now + duration
	e.s.At(end, func() {
		e.finishExec(w, t, execOutcome{
			lines: lines, faultCycles: faultCycles,
			residentDeltaKB: residentDeltaKB,
			remoteHeavy:     remoteHeavy, faulting: faulting,
		})
	})
}

type execOutcome struct {
	lines           int64
	faultCycles     int64
	residentDeltaKB int64
	remoteHeavy     bool
	faulting        bool
}

// finishExec completes task t on worker w: update counters, resolve
// dependences, create children, then look for more work.
func (e *engine) finishExec(w *worker, t TaskRef, out execOutcome) {
	now := e.s.Now()
	spec := &e.p.tasks[t]
	e.finished[t] = true
	e.executed++

	if out.remoteHeavy {
		e.activeRemote--
	}
	if out.faulting {
		e.activeFaulters--
	}

	w.branchMisses += spec.BranchMisses
	w.cacheMisses += out.lines
	w.sysTimeCycles += out.faultCycles
	w.residentKB += out.residentDeltaKB
	// Counter samples immediately after execution.
	e.em.hwSamples(w, now)
	e.em.rusageSamples(w, now, &e.cfg.HW)

	// Write accesses are recorded at completion.
	var notified int
	var maxFanout int
	for _, a := range spec.Writes {
		e.em.comm(trace.CommEvent{
			Kind: trace.CommWrite, CPU: w.id, SrcCPU: -1, Time: now,
			Task: traceTaskID(t), Addr: e.p.regions[a.Region].addr, Size: uint64(a.Bytes),
		})
		readers := e.p.readers[a.Region]
		notified += len(readers)
		if len(readers) > maxFanout {
			maxFanout = len(readers)
		}
	}

	// Resolve dependences now; the resolution overhead occupies the
	// worker afterwards.
	for _, a := range spec.Writes {
		e.regionDone[a.Region] = true
		for _, r := range e.p.readers[a.Region] {
			e.unresolved[r]--
			if e.unresolved[r] == 0 && e.created[r] {
				e.taskReady(r, w)
			}
		}
		if e.p.gated != nil {
			for _, g := range e.p.gated[a.Region] {
				e.gateRemaining[g]--
				if e.gateRemaining[g] == 0 {
					e.resumeGatedCreator(g)
				}
			}
		}
	}

	cursor := now
	if notified > 0 {
		resolve := e.cfg.Overhead.ResolvePerReader * int64(notified)
		if resolve > 0 {
			e.emitState(w, trace.StateResolve, cursor, cursor+resolve, traceTaskID(t))
			cursor += resolve
		}
	}
	if maxFanout > e.cfg.Overhead.BroadcastFanout {
		bcast := e.cfg.Overhead.BroadcastPerReader * int64(maxFanout)
		if bcast > 0 {
			e.emitState(w, trace.StateBroadcast, cursor, cursor+bcast, traceTaskID(t))
			cursor += bcast
		}
	}
	e.bump(cursor)

	children := e.p.children[t]
	if len(children) > 0 {
		e.createChildren(w, children, cursor)
		return
	}
	e.becomeFree(w, cursor)
}

// becomeFree transitions w to idle at time t and schedules its next
// work search.
func (e *engine) becomeFree(w *worker, t int64) {
	w.busy = false
	w.freeSince = t
	e.s.At(t, func() { e.seekWork(w) })
}

// resumeGatedCreator wakes the worker whose creation sequence waits on
// task g's gate, if any.
func (e *engine) resumeGatedCreator(g TaskRef) {
	owner := e.gateOwner[g]
	if owner < 0 {
		return
	}
	ow := &e.workers[owner]
	if ow.busy {
		return // will resume at its next seekWork
	}
	if e.isParked[owner] {
		e.isParked[owner] = false
	}
	e.s.After(e.cfg.Overhead.WakeLatency, func() { e.seekWork(ow) })
}

// createChildren makes w create the given tasks sequentially starting
// at time `start`, in chunks of creationChunk, then frees the worker.
// Reaching a child whose creation gate has not resolved suspends the
// sequence; seekWork resumes it once the gate opens.
func (e *engine) createChildren(w *worker, children []TaskRef, start int64) {
	w.busy = true
	cost := e.cfg.Overhead.TaskCreate
	var createChunk func(idx int, at int64)
	createChunk = func(idx int, at int64) {
		if e.gateRemaining[children[idx]] > 0 {
			w.pending = &pendingCreate{children: children, idx: idx}
			e.gateOwner[children[idx]] = w.id
			e.becomeFree(w, at)
			return
		}
		n := 0
		for idx+n < len(children) && n < creationChunk {
			if e.gateRemaining[children[idx+n]] > 0 {
				break
			}
			n++
		}
		dur := int64(n) * cost
		if dur < 1 {
			dur = 1
		}
		end := at + dur
		e.emitState(w, trace.StateTaskCreate, at, end, trace.NoTask)
		e.s.At(end, func() {
			// Emit creation records for the whole chunk before any
			// readiness processing: taskReady emits events at the
			// chunk end, which must not precede per-child creation
			// events at earlier timestamps in the CPU's stream.
			for i := 0; i < n; i++ {
				c := children[idx+i]
				e.created[c] = true
				ct := at + int64(i+1)*cost
				e.em.task(trace.Task{
					ID: traceTaskID(c), Type: trace.TypeID(e.p.tasks[c].Type),
					Created: ct, CreatorCPU: w.id,
				})
				e.em.discrete(trace.DiscreteEvent{
					CPU: w.id, Kind: trace.EventTaskCreated, Time: ct, Arg: taskArg(c),
				})
			}
			for i := 0; i < n; i++ {
				c := children[idx+i]
				if e.unresolved[c] == 0 {
					e.taskReady(c, w)
				}
			}
			if idx+n < len(children) {
				createChunk(idx+n, end)
				return
			}
			e.becomeFree(w, end)
		})
	}
	createChunk(0, start)
}

// emitState records a state interval in the result statistics and the
// trace, and advances the makespan.
func (e *engine) emitState(w *worker, st trace.WorkerState, start, end int64, task trace.TaskID) {
	if end <= start {
		return
	}
	e.res.StateCycles[st] += end - start
	e.bump(end)
	e.em.state(trace.StateEvent{CPU: w.id, State: st, Start: start, End: end, Task: task})
}

func (e *engine) bump(t int64) {
	if t > e.maxTime {
		e.maxTime = t
	}
}

// traceTaskID maps a program task to its trace ID (trace IDs are
// 1-based; 0 means "no task").
func traceTaskID(t TaskRef) trace.TaskID { return trace.TaskID(t) + 1 }

func taskArg(t TaskRef) uint64 { return uint64(traceTaskID(t)) }
