package openstream

import (
	"fmt"

	"github.com/openstream/aftermath/internal/hw"
	"github.com/openstream/aftermath/internal/topology"
)

// SchedPolicy selects the run-time's scheduling strategy.
type SchedPolicy int

const (
	// SchedRandom is the non-optimized configuration of Section IV:
	// ready tasks are enqueued on the worker that made them ready,
	// idle workers steal from uniformly random victims, and no NUMA
	// information is used.
	SchedRandom SchedPolicy = iota
	// SchedNUMA is the optimized configuration: ready tasks are
	// enqueued on the NUMA node holding most of their input data,
	// and idle workers steal from the nearest non-empty deque.
	SchedNUMA
)

// String returns the policy name.
func (s SchedPolicy) String() string {
	switch s {
	case SchedRandom:
		return "random"
	case SchedNUMA:
		return "numa-aware"
	}
	return "unknown"
}

// Overheads holds the run-time system's fixed costs in cycles.
type Overheads struct {
	// TaskCreate is the cost of creating one task (frame allocation
	// and dependence registration) on the creating worker.
	TaskCreate int64
	// StealAttempt is the cost of probing one victim deque.
	StealAttempt int64
	// StealHop is the additional steal cost per NUMA hop between
	// thief and victim.
	StealHop int64
	// ResolvePerReader is the dependence resolution cost per
	// consumer notified when a task completes.
	ResolvePerReader int64
	// BroadcastPerReader is the cost per consumer of broadcasting an
	// output read by more than BroadcastFanout consumers.
	BroadcastPerReader int64
	// BroadcastFanout is the consumer count threshold above which
	// output propagation is accounted as a broadcast.
	BroadcastFanout int
	// WakeLatency is the delay between a task being enqueued and a
	// parked worker waking to look for it.
	WakeLatency int64
}

// DefaultOverheads returns overheads representative of a lean
// user-space run-time on a 2 GHz class machine.
func DefaultOverheads() Overheads {
	return Overheads{
		TaskCreate:         2600,
		StealAttempt:       450,
		StealHop:           350,
		ResolvePerReader:   180,
		BroadcastPerReader: 250,
		BroadcastFanout:    4,
		WakeLatency:        600,
	}
}

// Tracing selects which record families the run-time writes. The
// paper's incremental trace design (Section VI-A) lets producers omit
// families to cut overhead and trace size.
type Tracing struct {
	// States enables worker state intervals.
	States bool
	// Comm enables memory access and steal communication events.
	Comm bool
	// Counters enables hardware counter sampling around task
	// execution (branch mispredictions, cache misses).
	Counters bool
	// Rusage enables OS statistics counters (system time, resident
	// set size), which the paper collects in a separate trace
	// because concurrent getrusage calls are expensive.
	Rusage bool
	// Discrete enables discrete events (creation, steals, wakeups).
	Discrete bool
}

// TraceAll enables every record family.
func TraceAll() Tracing {
	return Tracing{States: true, Comm: true, Counters: true, Rusage: true, Discrete: true}
}

// TraceStates enables only state intervals (the minimal useful trace).
func TraceStates() Tracing {
	return Tracing{States: true}
}

// Config parameterizes one simulated execution.
type Config struct {
	// Machine is the NUMA machine to execute on.
	Machine *topology.Machine
	// HW is the hardware cost model.
	HW hw.Model
	// Sched selects the scheduling policy.
	Sched SchedPolicy
	// Seed seeds the deterministic RNG (steal victim selection,
	// probe failures).
	Seed int64
	// Overhead holds the run-time's fixed costs.
	Overhead Overheads
	// Tracing selects emitted record families (ignored when Run is
	// given a nil writer).
	Tracing Tracing
}

// DefaultConfig returns a configuration for the given machine with the
// default hardware model, random scheduling and full tracing.
func DefaultConfig(m *topology.Machine) Config {
	return Config{
		Machine:  m,
		HW:       hw.Default(),
		Sched:    SchedRandom,
		Seed:     1,
		Overhead: DefaultOverheads(),
		Tracing:  TraceAll(),
	}
}

func (c *Config) validate() error {
	if c.Machine == nil {
		return fmt.Errorf("openstream: config has no machine")
	}
	if c.Machine.NumCPUs() < 1 {
		return fmt.Errorf("openstream: machine has no CPUs")
	}
	return nil
}

// Counter IDs used in emitted traces.
const (
	CounterIDBranchMisses = 1
	CounterIDCacheMisses  = 2
	CounterIDSystemTime   = 3
	CounterIDResidentKB   = 4
)

// Result summarizes one simulated execution.
type Result struct {
	// Makespan is the completion time of the last activity, in
	// cycles.
	Makespan int64
	// TasksExecuted counts executed tasks.
	TasksExecuted int
	// Steals counts successful steals.
	Steals int64
	// StealAttempts counts victim probes, including failures.
	StealAttempts int64
	// PagesFaulted counts pages physically allocated.
	PagesFaulted int64
	// SystemTimeCycles is the total time charged to the OS across
	// workers.
	SystemTimeCycles int64
	// StateCycles sums the time spent in each worker state over all
	// workers (indexed by trace.WorkerState).
	StateCycles []int64
	// Seconds is the makespan converted through the hardware model.
	Seconds float64
}
