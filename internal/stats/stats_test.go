package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/openstream/aftermath/internal/apps"
	"github.com/openstream/aftermath/internal/atmtest"
	"github.com/openstream/aftermath/internal/filter"
	"github.com/openstream/aftermath/internal/openstream"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, 9.5}, 10, 0, 10)
	if h.Total != 5 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if f := h.Fraction(1); math.Abs(f-0.4) > 1e-12 {
		t.Errorf("fraction = %v", f)
	}
	if c := h.BinCenter(0); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("bin center = %v", c)
	}
}

func TestHistogramOutOfRangeAndAuto(t *testing.T) {
	h := NewHistogram([]float64{-5, 5, 15}, 10, 0, 10)
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	// Auto range adapts to the data.
	h = NewHistogram([]float64{2, 4, 6}, 4, 0, 0)
	if h.Min != 2 || h.Max != 6 {
		t.Errorf("auto range = [%v,%v]", h.Min, h.Max)
	}
	if h.Under != 0 || h.Over != 0 {
		t.Error("auto range must cover all values")
	}
	// Max value lands in the last bin, not Over.
	if h.Counts[3] != 1 {
		t.Errorf("max value bin: %v", h.Counts)
	}
	// Degenerate data.
	h = NewHistogram([]float64{3, 3, 3}, 4, 0, 0)
	if h.Total != 3 || h.Under+h.Over != 0 {
		t.Errorf("degenerate histogram: %+v", h)
	}
}

// Property: histogram conserves the number of values.
func TestHistogramConservation(t *testing.T) {
	f := func(vals []float64, bins uint8) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		h := NewHistogram(clean, int(bins%20)+1, 0, 0)
		sum := h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == len(clean) && h.Total == len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramPeaks(t *testing.T) {
	h := &Histogram{Min: 0, Max: 10, Counts: []int{1, 5, 1, 1, 7, 1, 0, 3}, Total: 19}
	peaks := h.Peaks(2)
	if len(peaks) != 3 || peaks[0] != 1 || peaks[1] != 4 || peaks[2] != 7 {
		t.Errorf("peaks = %v, want [1 4 7]", peaks)
	}
	if got := h.Peaks(6); len(got) != 1 || got[0] != 4 {
		t.Errorf("peaks(6) = %v", got)
	}
}

func TestAverageParallelism(t *testing.T) {
	tr := atmtest.SeidelTrace(t, 6, 3, openstream.SchedRandom)
	p := AverageParallelism(tr, tr.Span.Start, tr.Span.End)
	if p <= 0 || p > float64(tr.NumCPUs()) {
		t.Errorf("parallelism = %v outside (0,%d]", p, tr.NumCPUs())
	}
	if AverageParallelism(tr, 10, 10) != 0 {
		t.Error("empty interval parallelism must be 0")
	}
}

func TestStateTimesBounded(t *testing.T) {
	tr := atmtest.SeidelTrace(t, 4, 2, openstream.SchedRandom)
	st := StateTimes(tr, tr.Span.Start, tr.Span.End)
	var total int64
	for _, v := range st {
		if v < 0 {
			t.Fatal("negative state time")
		}
		total += v
	}
	limit := tr.Span.Duration() * int64(tr.NumCPUs())
	if total > limit {
		t.Errorf("state total %d exceeds cpus*span %d", total, limit)
	}
	if st[0] == 0 {
		t.Error("no idle time found")
	}
}

func TestDurationHistogramFiltered(t *testing.T) {
	tr := atmtest.KMeansTrace(t, 8, 1000, 3, false)
	dist := filter.ByTypeNames(tr, apps.KMeansDistanceType)
	h := DurationHistogram(tr, dist, 20)
	if h.Total == 0 {
		t.Fatal("no tasks binned")
	}
	all := DurationHistogram(tr, nil, 20)
	if all.Total <= h.Total {
		t.Errorf("unfiltered histogram (%d) not larger than filtered (%d)", all.Total, h.Total)
	}
}

// The communication matrix of a NUMA-aware run must be more diagonal
// than a random-stealing run (the Figure 15 contrast).
func TestCommMatrixLocalityContrast(t *testing.T) {
	rnd := atmtest.SeidelTrace(t, 6, 4, openstream.SchedRandom)
	numa := atmtest.SeidelTrace(t, 6, 4, openstream.SchedNUMA)
	mr := CommMatrixOf(rnd, ReadsAndWrites, rnd.Span.Start, rnd.Span.End+1)
	mn := CommMatrixOf(numa, ReadsAndWrites, numa.Span.Start, numa.Span.End+1)
	if mr.Total() == 0 || mn.Total() == 0 {
		t.Fatal("empty communication matrix")
	}
	fr, fn := mr.LocalFraction(), mn.LocalFraction()
	if fn <= fr {
		t.Errorf("NUMA-aware locality %.3f not above random %.3f", fn, fr)
	}
	if fn < 0.5 {
		t.Errorf("NUMA-aware locality %.3f below 0.5", fn)
	}
}

func TestCommMatrixKinds(t *testing.T) {
	tr := atmtest.SeidelTrace(t, 4, 2, openstream.SchedRandom)
	r := CommMatrixOf(tr, Reads, tr.Span.Start, tr.Span.End+1)
	w := CommMatrixOf(tr, Writes, tr.Span.Start, tr.Span.End+1)
	both := CommMatrixOf(tr, ReadsAndWrites, tr.Span.Start, tr.Span.End+1)
	if r.Total()+w.Total() != both.Total() {
		t.Errorf("reads %d + writes %d != both %d", r.Total(), w.Total(), both.Total())
	}
	if r.Total() == 0 || w.Total() == 0 {
		t.Error("expected both read and write traffic")
	}
	if both.MaxCell() <= 0 {
		t.Error("max cell must be positive")
	}
}

func TestDominantNode(t *testing.T) {
	tr := atmtest.SeidelTrace(t, 4, 3, openstream.SchedNUMA)
	found := 0
	for i := range tr.Tasks {
		task := &tr.Tasks[i]
		if tr.TypeName(task.Type) != apps.SeidelBlockType {
			continue
		}
		if n := DominantNode(tr, task, Reads); n >= 0 {
			found++
			bytes := TaskNodeBytes(tr, task, Reads)
			for other, b := range bytes {
				if b > bytes[n] && other != n {
					t.Fatalf("node %d has more bytes than dominant %d", other, n)
				}
			}
		}
	}
	if found == 0 {
		t.Error("no task had a dominant read node")
	}
}

func TestLocalityFraction(t *testing.T) {
	tr := atmtest.SeidelTrace(t, 4, 2, openstream.SchedNUMA)
	f := LocalityFraction(tr, ReadsAndWrites, tr.Span.Start, tr.Span.End+1)
	if f < 0 || f > 1 {
		t.Errorf("locality fraction %v outside [0,1]", f)
	}
}
