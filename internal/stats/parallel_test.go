package stats

import (
	"testing"

	"github.com/openstream/aftermath/internal/atmtest"
	"github.com/openstream/aftermath/internal/openstream"
)

// TestCommMatrixParallelMatch: per-CPU matrices merge with integer
// adds, so the parallel matrix must equal the sequential one exactly.
func TestCommMatrixParallelMatch(t *testing.T) {
	tr := atmtest.SeidelTrace(t, 8, 4, openstream.SchedRandom)
	for _, kinds := range []CommKinds{Reads, Writes, ReadsAndWrites} {
		want := commMatrixOf(tr, kinds, tr.Span.Start, tr.Span.End, 1)
		for _, workers := range []int{2, 4, 8} {
			got := commMatrixOf(tr, kinds, tr.Span.Start, tr.Span.End, workers)
			if got.N != want.N {
				t.Fatalf("kinds %v workers=%d: N = %d, want %d", kinds, workers, got.N, want.N)
			}
			for i := range want.Bytes {
				if got.Bytes[i] != want.Bytes[i] {
					t.Fatalf("kinds %v workers=%d: cell %d = %d, want %d", kinds, workers, i, got.Bytes[i], want.Bytes[i])
				}
			}
		}
	}
	// A sub-window hits the binary-search windows per CPU.
	mid := tr.Span.Start + tr.Span.Duration()/2
	want := commMatrixOf(tr, ReadsAndWrites, tr.Span.Start, mid, 1)
	got := commMatrixOf(tr, ReadsAndWrites, tr.Span.Start, mid, 4)
	if want.Total() != got.Total() {
		t.Fatalf("windowed total = %d, want %d", got.Total(), want.Total())
	}
}
