package stats

import (
	"sort"

	"github.com/openstream/aftermath/internal/agg"
	"github.com/openstream/aftermath/internal/core"
	"github.com/openstream/aftermath/internal/trace"
)

// histArity is the HistIndex pyramid fan-out. Histogram nodes are
// whole count vectors, so combines cost O(bins); a modest arity keeps
// both the build (O(tasks·bins) total) and the per-query node count
// small.
const histArity = 8

// HistIndex is the window-mergeable form of the task duration
// histogram (Figure 16): a multi-resolution pyramid over the executed
// tasks ordered by execution start, whose summaries are fixed-range
// histograms of their durations. The histogram of the tasks starting
// in any window then merges O(arity·log n) precomputed nodes instead
// of re-binning every task — the same trade the min/max trees make for
// counter rendering, applied to a vector-valued aggregate through the
// generic framework in internal/agg.
//
// The bin range is fixed at build time over all indexed durations
// (derived as NewHistogram derives it), which is what makes window
// results mergeable; DurationHistogram, by contrast, re-derives the
// range from each filtered population.
type HistIndex struct {
	starts []trace.Time // ExecStart per indexed task, ascending
	durs   []float64    // durations aligned with starts
	min    float64
	max    float64
	bins   int
	tree   *agg.Tree[*Histogram]
}

// histAgg instantiates agg.Agg for HistIndex: a leaf is the one-value
// histogram of a task's duration, Combine adds count vectors into a
// fresh histogram (tree nodes are shared and must stay immutable).
type histAgg struct{ ix *HistIndex }

// Zero implements agg.Agg.
func (a histAgg) Zero() *Histogram { return a.ix.newHist() }

// Leaf implements agg.Agg.
func (a histAgg) Leaf(i int) *Histogram {
	h := a.ix.newHist()
	h.add(a.ix.durs[i])
	return h
}

// Combine implements agg.Agg.
func (a histAgg) Combine(x, y *Histogram) *Histogram {
	h := a.ix.newHist()
	for i := range h.Counts {
		h.Counts[i] = x.Counts[i] + y.Counts[i]
	}
	h.Under = x.Under + y.Under
	h.Over = x.Over + y.Over
	h.Total = x.Total + y.Total
	return h
}

func (ix *HistIndex) newHist() *Histogram {
	return &Histogram{Min: ix.min, Max: ix.max, Counts: make([]int, ix.bins)}
}

// NewHistIndex indexes the execution durations of every executed task,
// binned like NewHistogram over the full duration range.
func NewHistIndex(tr *core.Trace, bins int) *HistIndex {
	if bins < 1 {
		bins = 1
	}
	type rec struct {
		start trace.Time
		dur   float64
	}
	var recs []rec
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		if t.ExecCPU < 0 {
			continue
		}
		recs = append(recs, rec{t.ExecStart, float64(t.Duration())})
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].start < recs[j].start })

	ix := &HistIndex{bins: bins}
	ix.starts = make([]trace.Time, len(recs))
	ix.durs = make([]float64, len(recs))
	for i, r := range recs {
		ix.starts[i] = r.start
		ix.durs[i] = r.dur
		if i == 0 || r.dur < ix.min {
			ix.min = r.dur
		}
		if i == 0 || r.dur > ix.max {
			ix.max = r.dur
		}
	}
	if ix.min == ix.max {
		ix.max = ix.min + 1
	}
	ix.tree = agg.NewTree[*Histogram](histAgg{ix}, len(recs), histArity)
	return ix
}

// Len returns the number of indexed tasks.
func (ix *HistIndex) Len() int { return len(ix.starts) }

// Range returns the fixed bin range.
func (ix *HistIndex) Range() (min, max float64) { return ix.min, ix.max }

// Window returns the duration histogram of the indexed tasks whose
// execution started in [t0, t1), merged from the pyramid. The result
// may alias shared index nodes and must not be modified.
func (ix *HistIndex) Window(t0, t1 trace.Time) *Histogram {
	lo := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] >= t0 })
	hi := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] >= t1 })
	h, ok := ix.tree.Query(histAgg{ix}, lo, hi)
	if !ok {
		return ix.newHist()
	}
	return h
}

// WindowScan computes the same histogram by re-binning every task in
// the window — the ablation baseline the property test and the
// BenchmarkHistogramWindow benchmark compare the pyramid against.
func (ix *HistIndex) WindowScan(t0, t1 trace.Time) *Histogram {
	lo := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] >= t0 })
	hi := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] >= t1 })
	h := ix.newHist()
	for _, d := range ix.durs[lo:hi] {
		h.add(d)
	}
	return h
}
