package stats

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-2, -1, 0, 1, 2}, 0},
	}
	for _, c := range cases {
		if got := Median(c.xs); !almostEqual(got, c.want) {
			t.Errorf("Median(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
	// Input must not be reordered.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median reordered its input: %v", xs)
	}
}

func TestQuartiles(t *testing.T) {
	q1, q3 := Quartiles([]float64{1, 2, 3, 4, 5})
	if !almostEqual(q1, 2) || !almostEqual(q3, 4) {
		t.Errorf("Quartiles(1..5) = %g, %g, want 2, 4", q1, q3)
	}
	q1, q3 = Quartiles(nil)
	if q1 != 0 || q3 != 0 {
		t.Errorf("Quartiles(nil) = %g, %g", q1, q3)
	}
	q1, q3 = Quartiles([]float64{7})
	if !almostEqual(q1, 7) || !almostEqual(q3, 7) {
		t.Errorf("Quartiles([7]) = %g, %g", q1, q3)
	}
}

func TestMAD(t *testing.T) {
	// Median 3, absolute deviations {2,1,0,1,2} -> MAD 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); !almostEqual(got, 1) {
		t.Errorf("MAD(1..5) = %g, want 1", got)
	}
	if got := MAD([]float64{4, 4, 4}); got != 0 {
		t.Errorf("MAD(constant) = %g, want 0", got)
	}
	if got := MAD(nil); got != 0 {
		t.Errorf("MAD(nil) = %g, want 0", got)
	}
	// An outlier barely moves the MAD — the property the detectors
	// rely on.
	base := MAD([]float64{1, 2, 3, 4, 5})
	spiked := MAD([]float64{1, 2, 3, 4, 1e9})
	if spiked > 2*base {
		t.Errorf("MAD not robust: %g vs %g", spiked, base)
	}
}

func TestRobustSpread(t *testing.T) {
	// Normal-ish data: scaled MAD.
	if got := RobustSpread([]float64{1, 2, 3, 4, 5}); !almostEqual(got, 1.4826) {
		t.Errorf("RobustSpread(1..5) = %g, want 1.4826", got)
	}
	// More than half identical (MAD 0): falls back to the IQR.
	xs := []float64{5, 5, 5, 5, 5, 1, 2, 9}
	if got := RobustSpread(xs); got <= 0 {
		t.Errorf("RobustSpread(%v) = %g, want > 0 (IQR fallback)", xs, got)
	}
	// No spread information at all.
	if got := RobustSpread([]float64{5, 5, 5}); got != 0 {
		t.Errorf("RobustSpread(constant) = %g, want 0", got)
	}
}

func TestRobustZ(t *testing.T) {
	if got := RobustZ(10, 4, 2); !almostEqual(got, 3) {
		t.Errorf("RobustZ(10,4,2) = %g, want 3", got)
	}
	if got := RobustZ(1, 4, 2); !almostEqual(got, -1.5) {
		t.Errorf("RobustZ(1,4,2) = %g, want -1.5", got)
	}
	if got := RobustZ(10, 4, 0); got != 0 {
		t.Errorf("RobustZ with zero spread = %g, want 0", got)
	}
}
