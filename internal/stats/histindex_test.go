package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/openstream/aftermath/internal/core"
	"github.com/openstream/aftermath/internal/trace"
)

// histTrace builds a trace skeleton with n executed tasks whose
// execution starts spread (unsorted in the task table) over [base,
// base+n*1000) and durations in [1, 5000).
func histTrace(rng *rand.Rand, n int, base trace.Time) *core.Trace {
	tr := &core.Trace{}
	for i := 0; i < n; i++ {
		start := base + trace.Time(rng.Int63n(int64(n)*1000))
		tr.Tasks = append(tr.Tasks, core.TaskInfo{
			ID:        trace.TaskID(i),
			ExecCPU:   int32(i % 4),
			ExecStart: start,
			ExecEnd:   start + 1 + trace.Time(rng.Int63n(4999)),
		})
	}
	// A sprinkling of never-executed tasks the index must skip.
	for i := 0; i < n/10; i++ {
		tr.Tasks = append(tr.Tasks, core.TaskInfo{ID: trace.TaskID(n + i), ExecCPU: -1})
	}
	return tr
}

// TestHistIndexMatchesScan: every window's merged histogram equals the
// brute-force re-binning of the window's tasks, including at time
// bases near MaxInt64/2 (the extreme-timestamp regime of cycle-counter
// traces) and for empty and full windows.
func TestHistIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, base := range []trace.Time{0, math.MaxInt64 / 2} {
		for _, n := range []int{0, 1, 7, 100, 3000} {
			tr := histTrace(rng, n, base)
			ix := NewHistIndex(tr, 32)
			if ix.Len() != n {
				t.Fatalf("base=%d n=%d: indexed %d tasks", base, n, ix.Len())
			}
			span := trace.Time(int64(n)*1000 + 5000)
			for q := 0; q < 100; q++ {
				t0 := base + trace.Time(rng.Int63n(int64(span)+1))
				t1 := base + trace.Time(rng.Int63n(int64(span)+1))
				if t0 > t1 {
					t0, t1 = t1, t0
				}
				got := ix.Window(t0, t1)
				want := ix.WindowScan(t0, t1)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("base=%d n=%d: Window(%d,%d) = %+v, want %+v", base, n, t0, t1, got, want)
				}
			}
			full := ix.Window(base, base+span+1)
			if full.Total != n {
				t.Fatalf("base=%d n=%d: full window Total = %d", base, n, full.Total)
			}
			if got := ix.Window(base, base); got.Total != 0 {
				t.Fatalf("empty window Total = %d", got.Total)
			}
		}
	}
}

// TestHistIndexMatchesHistogram: the full-range window equals
// NewHistogram over the same durations with the index's fixed range —
// the pyramid is the same histogram, decomposed.
func TestHistIndexMatchesHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tr := histTrace(rng, 500, 0)
	ix := NewHistIndex(tr, 20)
	min, max := ix.Range()
	var durs []float64
	for i := range tr.Tasks {
		if tr.Tasks[i].ExecCPU >= 0 {
			durs = append(durs, float64(tr.Tasks[i].Duration()))
		}
	}
	want := NewHistogram(durs, 20, min, max)
	got := ix.Window(math.MinInt64, math.MaxInt64)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("full-range window %+v != bulk histogram %+v", got, want)
	}
}
