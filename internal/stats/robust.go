package stats

import "sort"

// Robust location/spread estimators used by the anomaly detectors:
// outlier scoring must not be pulled around by the very outliers it is
// supposed to find, so medians and median absolute deviations replace
// means and standard deviations (Drebes et al., "Automatic Detection
// of Performance Anomalies in Task-Parallel Programs").

// madScale converts a median absolute deviation into a standard
// deviation estimate for normally distributed data (1/Φ⁻¹(0.75)).
const madScale = 1.4826

// iqrScale converts an interquartile range into a standard deviation
// estimate for normally distributed data.
const iqrScale = 1.349

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedQuantile(s, 0.5)
}

// Quartiles returns the first and third quartile of xs using linear
// interpolation between order statistics. xs is not modified.
func Quartiles(xs []float64) (q1, q3 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedQuantile(s, 0.25), sortedQuantile(s, 0.75)
}

// MAD returns the median absolute deviation of xs around its median.
// xs is not modified.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, v := range xs {
		d := v - med
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	return Median(dev)
}

// RobustSpread estimates the standard deviation of xs resistant to
// outliers: the scaled MAD, falling back to the scaled IQR when more
// than half of the values are identical (MAD 0), and 0 only when the
// values carry no spread information at all.
func RobustSpread(xs []float64) float64 {
	if mad := MAD(xs); mad > 0 {
		return mad * madScale
	}
	q1, q3 := Quartiles(xs)
	return (q3 - q1) / iqrScale
}

// RobustZ returns the robust z-score of v against the sample described
// by median and spread (as from Median and RobustSpread): the number
// of spread units v lies above the median. A zero spread degenerates
// to 0 when v equals the median and ±inf-like large scores otherwise
// are avoided by the caller providing a spread floor.
func RobustZ(v, median, spread float64) float64 {
	if spread <= 0 {
		return 0
	}
	return (v - median) / spread
}

// Sorted variants: when the caller already holds an ascending-sorted
// population — the incrementally maintained per-type duration
// populations of core.TaskDurations — the estimators skip the copy and
// sort and run in O(n) (O(1) for the quantiles). Each is defined to
// return exactly what its unsorted counterpart returns on any
// permutation of the same values, so indexed and cold anomaly scans
// stay byte-identical.

// MedianSorted returns the median of an ascending-sorted slice,
// equal to Median on any permutation of it.
func MedianSorted(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	return sortedQuantile(s, 0.5)
}

// QuartilesSorted returns the first and third quartile of an
// ascending-sorted slice, equal to Quartiles on any permutation.
func QuartilesSorted(s []float64) (q1, q3 float64) {
	if len(s) == 0 {
		return 0, 0
	}
	return sortedQuantile(s, 0.25), sortedQuantile(s, 0.75)
}

// MADSorted returns the median absolute deviation of an
// ascending-sorted slice, equal to MAD on any permutation: the
// deviations |v - med| form two monotone runs around the median — the
// prefix below it descending, the suffix ascending — so merging the
// runs yields the sorted deviation array without another sort. The
// per-element values match MAD's bitwise (IEEE negation is exact:
// med-v == -(v-med)).
func MADSorted(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	med := sortedQuantile(s, 0.5)
	k := sort.SearchFloat64s(s, med) // first index with s[i] >= med
	dev := make([]float64, 0, len(s))
	i, j := k-1, k
	for i >= 0 && j < len(s) {
		if a, b := med-s[i], s[j]-med; a <= b {
			dev = append(dev, a)
			i--
		} else {
			dev = append(dev, b)
			j++
		}
	}
	for ; i >= 0; i-- {
		dev = append(dev, med-s[i])
	}
	for ; j < len(s); j++ {
		dev = append(dev, s[j]-med)
	}
	return sortedQuantile(dev, 0.5)
}

// RobustSpreadSorted returns RobustSpread of an ascending-sorted
// slice, equal to RobustSpread on any permutation.
func RobustSpreadSorted(s []float64) float64 {
	if mad := MADSorted(s); mad > 0 {
		return mad * madScale
	}
	q1, q3 := QuartilesSorted(s)
	return (q3 - q1) / iqrScale
}

// sortedQuantile returns the q-quantile (0..1) of an ascending-sorted
// non-empty slice using linear interpolation.
func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i] + (s[i+1]-s[i])*frac
}
