// Package stats implements Aftermath's statistical views (paper
// Section II-A, interface group 2): task duration histograms, average
// parallelism, per-state time aggregation, and the NUMA communication
// incidence matrix of Figure 15.
package stats

import (
	"math"

	"github.com/openstream/aftermath/internal/core"
	"github.com/openstream/aftermath/internal/filter"
	"github.com/openstream/aftermath/internal/par"
	"github.com/openstream/aftermath/internal/trace"
)

// Histogram is a fixed-range histogram over float64 values.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
	// Under and Over count values outside [Min, Max].
	Under, Over int
}

// NewHistogram bins values into `bins` equal-width bins over
// [min, max]. If min == max, the range is derived from the data.
func NewHistogram(values []float64, bins int, min, max float64) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if min == max {
		for i, v := range values {
			if i == 0 || v < min {
				min = v
			}
			if i == 0 || v > max {
				max = v
			}
		}
		if min == max {
			max = min + 1
		}
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	for _, v := range values {
		h.add(v)
	}
	return h
}

// add bins one value — the single definition of the bin function, so
// histograms built value-by-value (HistIndex leaves) and in bulk agree
// exactly.
func (h *Histogram) add(v float64) {
	switch {
	case v < h.Min:
		h.Under++
	case v > h.Max:
		h.Over++
	default:
		bins := len(h.Counts)
		width := (h.Max - h.Min) / float64(bins)
		f := (v - h.Min) / width
		i := int(f)
		if math.IsNaN(f) || i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	h.Total++
}

// Fraction returns the fraction of all values in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(i)+0.5)
}

// Peaks returns the indexes of local maxima with count above minCount.
func (h *Histogram) Peaks(minCount int) []int {
	var peaks []int
	for i, c := range h.Counts {
		if c < minCount {
			continue
		}
		left := 0
		if i > 0 {
			left = h.Counts[i-1]
		}
		right := 0
		if i+1 < len(h.Counts) {
			right = h.Counts[i+1]
		}
		if c >= left && c > right || c > left && c >= right {
			peaks = append(peaks, i)
		}
	}
	return peaks
}

// DurationHistogram bins the execution durations of matching tasks —
// the task duration histogram view (Figure 16).
func DurationHistogram(tr *core.Trace, f *filter.TaskFilter, bins int) *Histogram {
	return NewHistogram(filter.Durations(tr, f), bins, 0, 0)
}

// AverageParallelism returns the mean number of simultaneously
// executing tasks over [t0, t1) — the "average parallelism" text field
// of the statistics group.
func AverageParallelism(tr *core.Trace, t0, t1 trace.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	var busy trace.Time
	for cpu := int32(0); int(cpu) < tr.NumCPUs(); cpu++ {
		for _, ev := range tr.StatesIn(cpu, t0, t1) {
			if ev.State != trace.StateTaskExec {
				continue
			}
			s, e := ev.Start, ev.End
			if s < t0 {
				s = t0
			}
			if e > t1 {
				e = t1
			}
			if e > s {
				busy += e - s
			}
		}
	}
	return float64(busy) / float64(t1-t0)
}

// StateTimes aggregates the time spent in each worker state across all
// CPUs over [t0, t1).
func StateTimes(tr *core.Trace, t0, t1 trace.Time) []trace.Time {
	out := make([]trace.Time, trace.NumWorkerStates)
	for cpu := int32(0); int(cpu) < tr.NumCPUs(); cpu++ {
		for _, ev := range tr.StatesIn(cpu, t0, t1) {
			s, e := ev.Start, ev.End
			if s < t0 {
				s = t0
			}
			if e > t1 {
				e = t1
			}
			if e > s && int(ev.State) < len(out) {
				out[ev.State] += e - s
			}
		}
	}
	return out
}

// CommMatrix is the NUMA communication incidence matrix (Figure 15):
// Bytes[accessor*N+home] accumulates the bytes moved between the
// accessing worker's node and the node holding the data.
type CommMatrix struct {
	N     int
	Bytes []int64
}

// At returns the bytes between accessor node a and home node h.
func (m *CommMatrix) At(a, h int) int64 { return m.Bytes[a*m.N+h] }

// Total returns all accounted bytes.
func (m *CommMatrix) Total() int64 {
	var s int64
	for _, b := range m.Bytes {
		s += b
	}
	return s
}

// LocalFraction returns the fraction of bytes on the diagonal — the
// instantly readable signature of good locality in Figure 15b.
func (m *CommMatrix) LocalFraction() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	var d int64
	for i := 0; i < m.N; i++ {
		d += m.At(i, i)
	}
	return float64(d) / float64(t)
}

// MaxCell returns the largest cell value.
func (m *CommMatrix) MaxCell() int64 {
	var mx int64
	for _, b := range m.Bytes {
		if b > mx {
			mx = b
		}
	}
	return mx
}

// CommKinds selects which access kinds enter a locality statistic.
type CommKinds int

const (
	// Reads selects read accesses.
	Reads CommKinds = 1 << iota
	// Writes selects write accesses.
	Writes
	// ReadsAndWrites selects both.
	ReadsAndWrites = Reads | Writes
)

func (k CommKinds) matches(ck trace.CommKind) bool {
	switch ck {
	case trace.CommRead:
		return k&Reads != 0
	case trace.CommWrite:
		return k&Writes != 0
	}
	return false
}

// CommMatrixOf accumulates the communication matrix over [t0, t1).
// The home node of each access is derived by looking up the address in
// the region table (Section VI-A); accesses to unknown regions are
// skipped.
//
// Traces carrying the incrementally maintained communication totals
// (live snapshots, see core.CommTotals) answer windows that cover
// every communication event — the full-span queries the anomaly
// baselines and the statistics panel default to — in O(nodes²) from
// the totals, without touching the events; the result is byte-equal to
// the scan (integer byte sums accumulated by the same per-event
// logic). Other windows, and traces without totals, scan.
func CommMatrixOf(tr *core.Trace, kinds CommKinds, t0, t1 trace.Time) *CommMatrix {
	if ct := tr.CommTotals(); ct != nil && ct.N == tr.NumNodes() && ct.Covers(t0, t1) {
		n := ct.N
		m := &CommMatrix{N: n, Bytes: make([]int64, n*n)}
		if kinds&Reads != 0 {
			for i, b := range ct.Reads {
				m.Bytes[i] += b
			}
		}
		if kinds&Writes != 0 {
			for i, b := range ct.Writes {
				m.Bytes[i] += b
			}
		}
		return m
	}
	return CommMatrixScanOf(tr, kinds, t0, t1)
}

// CommMatrixScanOf accumulates the communication matrix by scanning
// the events in [t0, t1) — the path every window takes on traces
// without totals, exported as the ablation baseline for the
// incremental path.
func CommMatrixScanOf(tr *core.Trace, kinds CommKinds, t0, t1 trace.Time) *CommMatrix {
	return commMatrixOf(tr, kinds, t0, t1, par.Workers())
}

func commMatrixOf(tr *core.Trace, kinds CommKinds, t0, t1 trace.Time, workers int) *CommMatrix {
	n := tr.NumNodes()
	m := &CommMatrix{N: n, Bytes: make([]int64, n*n)}
	// Per-CPU communication windows are independent: accumulate one
	// local matrix per CPU in parallel and sum them (integer adds, so
	// the merge order cannot change the result).
	nCPU := tr.NumCPUs()
	perCPU := make([][]int64, nCPU)
	par.Do(workers, nCPU, func(c int) {
		cpu := int32(c)
		accessor := tr.NodeOfCPU(cpu)
		if int(accessor) >= n {
			return
		}
		var local []int64
		for _, ev := range tr.CommIn(cpu, t0, t1) {
			if !kinds.matches(ev.Kind) {
				continue
			}
			home := tr.NodeOfAddr(ev.Addr)
			if home < 0 || int(home) >= n {
				continue
			}
			if local == nil {
				local = make([]int64, n*n)
			}
			local[int(accessor)*n+int(home)] += int64(ev.Size)
		}
		perCPU[c] = local
	})
	for _, local := range perCPU {
		if local == nil {
			continue
		}
		for i, b := range local {
			m.Bytes[i] += b
		}
	}
	return m
}

// LocalityFraction returns the fraction of accessed bytes homed on the
// accessing worker's own node over [t0, t1).
func LocalityFraction(tr *core.Trace, kinds CommKinds, t0, t1 trace.Time) float64 {
	return CommMatrixOf(tr, kinds, t0, t1).LocalFraction()
}

// TaskNodeBytes returns the bytes a task reads (or writes) per home
// NUMA node — the quantity behind the NUMA timeline modes, where every
// task is colored by the node holding the largest fraction of the data
// it reads (Section IV).
func TaskNodeBytes(tr *core.Trace, t *core.TaskInfo, kinds CommKinds) map[int32]int64 {
	out := make(map[int32]int64)
	for _, ev := range tr.TaskComm(t) {
		if !kinds.matches(ev.Kind) {
			continue
		}
		if home := tr.NodeOfAddr(ev.Addr); home >= 0 {
			out[home] += int64(ev.Size)
		}
	}
	return out
}

// DominantNode returns the node holding most of the task's accessed
// bytes, or -1 when nothing is known.
func DominantNode(tr *core.Trace, t *core.TaskInfo, kinds CommKinds) int32 {
	best, bestBytes := int32(-1), int64(0)
	for node, b := range TaskNodeBytes(tr, t, kinds) {
		if b > bestBytes || (b == bestBytes && node < best) || best < 0 {
			best, bestBytes = node, b
		}
	}
	return best
}
