package aftermath

import (
	"bytes"

	"github.com/openstream/aftermath/internal/core"
	"github.com/openstream/aftermath/internal/openstream"
	"github.com/openstream/aftermath/internal/trace"
)

// simulateToTrace runs a program with tracing into memory and loads
// the result.
func simulateToTrace(p *openstream.Program, cfg openstream.Config) (*core.Trace, openstream.Result, error) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	res, err := openstream.Run(p, cfg, w)
	if err != nil {
		return nil, res, err
	}
	if err := w.Flush(); err != nil {
		return nil, res, err
	}
	tr, err := core.FromReader(&buf)
	return tr, res, err
}
