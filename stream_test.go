// Tests for live streaming trace ingest: the batch-equivalence harness
// (the correctness spine of the streaming path — every checkpoint of a
// streamed trace must be byte-identical to a cold load of the same
// prefix) and a writer-vs-readers race stress test across the metric,
// rendering and anomaly layers.
package aftermath

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/openstream/aftermath/internal/anomaly"
	"github.com/openstream/aftermath/internal/apps"
	"github.com/openstream/aftermath/internal/core"
	"github.com/openstream/aftermath/internal/metrics"
	"github.com/openstream/aftermath/internal/openstream"
	"github.com/openstream/aftermath/internal/render"
	"github.com/openstream/aftermath/internal/topology"
	"github.com/openstream/aftermath/internal/trace"
)

// simTraceBytes simulates a seidel run on a small NUMA machine and
// returns the raw trace stream bytes.
func simTraceBytes(tb testing.TB, blocks, iters int) []byte {
	tb.Helper()
	prog, err := apps.BuildSeidel(apps.ScaledSeidelConfig(blocks, iters))
	if err != nil {
		tb.Fatal(err)
	}
	cfg := openstream.DefaultConfig(topology.Small(4, 4))
	cfg.Seed = 7
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if _, err := openstream.Run(prog, cfg, w); err != nil {
		tb.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// growingTrace exposes data[:limit] and reports io.EOF at the current
// limit — a trace file that is still being written.
type growingTrace struct {
	data  []byte
	limit int
	off   int
}

func (g *growingTrace) Read(p []byte) (int, error) {
	if g.off >= g.limit {
		return 0, io.EOF
	}
	n := copy(p, g.data[g.off:g.limit])
	g.off += n
	return n, nil
}

// assertStreamEqualsBatch compares the streamed snapshot against a
// cold load of the same prefix: raw structure, derived metric series,
// the anomaly ranking and rendered timeline pixels.
func assertStreamEqualsBatch(t *testing.T, ctx string, snap, cold *core.Trace) {
	t.Helper()
	// Raw structure.
	if snap.Span != cold.Span {
		t.Fatalf("%s: span = %+v, want %+v", ctx, snap.Span, cold.Span)
	}
	if !reflect.DeepEqual(snap.Topology, cold.Topology) {
		t.Fatalf("%s: topology differs", ctx)
	}
	if !reflect.DeepEqual(snap.CPUs, cold.CPUs) {
		t.Fatalf("%s: per-CPU event arrays differ", ctx)
	}
	if !reflect.DeepEqual(snap.Tasks, cold.Tasks) {
		t.Fatalf("%s: task tables differ (%d vs %d tasks)", ctx, len(snap.Tasks), len(cold.Tasks))
	}
	if !reflect.DeepEqual(snap.Types, cold.Types) {
		t.Fatalf("%s: type tables differ", ctx)
	}
	if !reflect.DeepEqual(snap.Regions, cold.Regions) {
		t.Fatalf("%s: region tables differ", ctx)
	}
	if len(snap.Counters) != len(cold.Counters) {
		t.Fatalf("%s: %d counters, want %d", ctx, len(snap.Counters), len(cold.Counters))
	}
	for i := range snap.Counters {
		if snap.Counters[i].Desc != cold.Counters[i].Desc {
			t.Fatalf("%s: counter %d desc differs", ctx, i)
		}
		if !reflect.DeepEqual(snap.Counters[i].PerCPU, cold.Counters[i].PerCPU) {
			t.Fatalf("%s: counter %d samples differ", ctx, i)
		}
	}

	// Derived metric series (bit-exact float comparison via DeepEqual).
	gi := metrics.WorkersInState(snap, trace.StateIdle, 64)
	wi := metrics.WorkersInState(cold, trace.StateIdle, 64)
	if !reflect.DeepEqual(gi, wi) {
		t.Fatalf("%s: WorkersInState series differ", ctx)
	}
	gd := metrics.AverageTaskDuration(snap, 48, nil)
	wd := metrics.AverageTaskDuration(cold, 48, nil)
	if !reflect.DeepEqual(gd, wd) {
		t.Fatalf("%s: AverageTaskDuration series differ", ctx)
	}

	// Anomaly ranking, including scores and explanations (which read
	// the counter index — seeded incrementally on the streaming side).
	ga := anomaly.Scan(snap, anomaly.Config{})
	wa := anomaly.Scan(cold, anomaly.Config{})
	if !reflect.DeepEqual(ga, wa) {
		t.Fatalf("%s: anomaly rankings differ (%d vs %d findings)", ctx, len(ga), len(wa))
	}
	// The incremental-baseline ablation: the snapshot's indexed scan
	// (scored against the aggregate baselines its publishes maintained
	// incrementally) must equal a full rescan of the very same
	// snapshot with the index disabled.
	na := anomaly.Scan(snap, anomaly.Config{NoIndex: true})
	if !reflect.DeepEqual(ga, na) {
		t.Fatalf("%s: indexed and NoIndex anomaly rankings differ", ctx)
	}

	// Timeline rows, byte-identical pixels.
	if snap.Span.Duration() > 0 {
		cfg := render.TimelineConfig{Width: 320, Height: 120, Mode: render.ModeState}
		gfb, _, gerr := render.Timeline(snap, cfg)
		wfb, _, werr := render.Timeline(cold, cfg)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s: timeline errors differ: %v vs %v", ctx, gerr, werr)
		}
		if gerr == nil && !bytes.Equal(gfb.Img.Pix, wfb.Img.Pix) {
			t.Fatalf("%s: timeline pixels differ", ctx)
		}
	}
}

// TestStreamEqualsBatch is the batch-equivalence harness: a simulated
// trace is streamed through the live ingest path with randomized
// checkpoint boundaries, and at every checkpoint the published
// snapshot must equal a fresh batch load of exactly the stream prefix
// consumed so far — timeline rows, metric series, anomaly rankings and
// all raw tables. Runs under both a single-core and a parallel
// schedule (CI additionally pins GOMAXPROCS=1 and 4).
func TestStreamEqualsBatch(t *testing.T) {
	data := simTraceBytes(t, 6, 4)
	for _, gmp := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", gmp), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))
			for seed := int64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					g := &growingTrace{data: data}
					sr := trace.NewStreamReader(g)
					lv := core.NewLive()
					const checkpoints = 12
					step := len(data) / checkpoints
					for k := 1; k <= checkpoints; k++ {
						if k == checkpoints {
							g.limit = len(data)
						} else {
							g.limit += 1 + rng.Intn(2*step)
							if g.limit > len(data) {
								g.limit = len(data)
							}
						}
						if _, err := lv.Feed(sr); err != nil {
							t.Fatalf("checkpoint %d: feed: %v", k, err)
						}
						off := sr.Consumed()
						if off == 0 {
							continue
						}
						snap, _ := lv.Snapshot()
						cold, err := core.FromReader(bytes.NewReader(data[:off]))
						if err != nil {
							t.Fatalf("checkpoint %d: cold load of %d-byte prefix: %v", k, off, err)
						}
						assertStreamEqualsBatch(t, fmt.Sprintf("checkpoint %d (offset %d)", k, off), snap, cold)
					}
					if err := sr.Done(); err != nil {
						t.Fatalf("stream did not end cleanly: %v", err)
					}
					if sr.Consumed() != int64(len(data)) {
						t.Fatalf("consumed %d of %d bytes", sr.Consumed(), len(data))
					}
				})
			}
		})
	}
}

// assertSpilledEqualsBatch is assertStreamEqualsBatch for snapshots
// whose event columns may live in spilled segment files: raw tables
// that never spill compare directly, the per-CPU event and sample
// columns compare through the stitched accessors (full-range windows,
// so zero-length states at the span edges are included), and every
// derived layer (metrics, anomaly ranking with and without the index,
// timeline pixels) must be byte-identical to the cold load.
func assertSpilledEqualsBatch(t *testing.T, ctx string, snap, cold *core.Trace) {
	t.Helper()
	if snap.Span != cold.Span {
		t.Fatalf("%s: span = %+v, want %+v", ctx, snap.Span, cold.Span)
	}
	if !reflect.DeepEqual(snap.Topology, cold.Topology) {
		t.Fatalf("%s: topology differs", ctx)
	}
	if !reflect.DeepEqual(snap.Tasks, cold.Tasks) {
		t.Fatalf("%s: task tables differ (%d vs %d tasks)", ctx, len(snap.Tasks), len(cold.Tasks))
	}
	if !reflect.DeepEqual(snap.Types, cold.Types) {
		t.Fatalf("%s: type tables differ", ctx)
	}
	if !reflect.DeepEqual(snap.Regions, cold.Regions) {
		t.Fatalf("%s: region tables differ", ctx)
	}
	if snap.NumCPUs() != cold.NumCPUs() {
		t.Fatalf("%s: %d CPUs, want %d", ctx, snap.NumCPUs(), cold.NumCPUs())
	}
	const lo, hi = math.MinInt64, math.MaxInt64
	for cpu := int32(0); int(cpu) < cold.NumCPUs(); cpu++ {
		gs, ws := snap.StatesIn(cpu, lo, hi), cold.CPUs[cpu].States
		if len(gs) != len(ws) || (len(ws) > 0 && !reflect.DeepEqual(gs, ws)) {
			t.Fatalf("%s: cpu %d states differ (%d vs %d)", ctx, cpu, len(gs), len(ws))
		}
		gd, wd := snap.DiscreteIn(cpu, lo, hi), cold.CPUs[cpu].Discrete
		if len(gd) != len(wd) || (len(wd) > 0 && !reflect.DeepEqual(gd, wd)) {
			t.Fatalf("%s: cpu %d discrete events differ (%d vs %d)", ctx, cpu, len(gd), len(wd))
		}
		gc, wc := snap.CommIn(cpu, lo, hi), cold.CPUs[cpu].Comm
		if len(gc) != len(wc) || (len(wc) > 0 && !reflect.DeepEqual(gc, wc)) {
			t.Fatalf("%s: cpu %d comm events differ (%d vs %d)", ctx, cpu, len(gc), len(wc))
		}
	}
	if len(snap.Counters) != len(cold.Counters) {
		t.Fatalf("%s: %d counters, want %d", ctx, len(snap.Counters), len(cold.Counters))
	}
	for i := range snap.Counters {
		if snap.Counters[i].Desc != cold.Counters[i].Desc {
			t.Fatalf("%s: counter %d desc differs", ctx, i)
		}
		for cpu := range cold.Counters[i].PerCPU {
			gs := snap.Counters[i].Samples(int32(cpu))
			ws := cold.Counters[i].PerCPU[cpu]
			if len(gs) != len(ws) || (len(ws) > 0 && !reflect.DeepEqual(gs, ws)) {
				t.Fatalf("%s: counter %d cpu %d samples differ (%d vs %d)", ctx, i, cpu, len(gs), len(ws))
			}
		}
	}
	ge, gsm := snap.EventCounts()
	we, wsm := cold.EventCounts()
	if ge != we || gsm != wsm {
		t.Fatalf("%s: EventCounts (%d, %d), want (%d, %d)", ctx, ge, gsm, we, wsm)
	}

	gi := metrics.WorkersInState(snap, trace.StateIdle, 64)
	wi := metrics.WorkersInState(cold, trace.StateIdle, 64)
	if !reflect.DeepEqual(gi, wi) {
		t.Fatalf("%s: WorkersInState series differ", ctx)
	}
	gd := metrics.AverageTaskDuration(snap, 48, nil)
	wd := metrics.AverageTaskDuration(cold, 48, nil)
	if !reflect.DeepEqual(gd, wd) {
		t.Fatalf("%s: AverageTaskDuration series differ", ctx)
	}
	ga := anomaly.Scan(snap, anomaly.Config{})
	wa := anomaly.Scan(cold, anomaly.Config{})
	if !reflect.DeepEqual(ga, wa) {
		t.Fatalf("%s: anomaly rankings differ (%d vs %d findings)", ctx, len(ga), len(wa))
	}
	na := anomaly.Scan(snap, anomaly.Config{NoIndex: true})
	if !reflect.DeepEqual(ga, na) {
		t.Fatalf("%s: indexed and NoIndex anomaly rankings differ", ctx)
	}
	if snap.Span.Duration() > 0 {
		cfg := render.TimelineConfig{Width: 320, Height: 120, Mode: render.ModeState}
		gfb, _, gerr := render.Timeline(snap, cfg)
		wfb, _, werr := render.Timeline(cold, cfg)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s: timeline errors differ: %v vs %v", ctx, gerr, werr)
		}
		if gerr == nil && !bytes.Equal(gfb.Img.Pix, wfb.Img.Pix) {
			t.Fatalf("%s: timeline pixels differ", ctx)
		}
	}
}

// TestStreamEqualsBatchSpilled reruns the batch-equivalence harness
// with epoch spilling forced at every publish (a 1-byte RAM budget and
// synchronous compaction), so each randomized checkpoint boundary is
// also a spill boundary. Snapshots whose columns are stitched from
// mmap-backed segment files and the RAM tail must stay byte-identical
// to cold loads of the consumed prefix across every layer.
func TestStreamEqualsBatchSpilled(t *testing.T) {
	data := simTraceBytes(t, 6, 4)
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := &growingTrace{data: data}
			sr := trace.NewStreamReader(g)
			lv := core.NewLive()
			lv.SetRetention(core.RetentionPolicy{
				Dir:        t.TempDir(),
				SpillBytes: 1,
				Sync:       true,
			})
			defer lv.Close()
			const checkpoints = 12
			step := len(data) / checkpoints
			for k := 1; k <= checkpoints; k++ {
				if k == checkpoints {
					g.limit = len(data)
				} else {
					g.limit += 1 + rng.Intn(2*step)
					if g.limit > len(data) {
						g.limit = len(data)
					}
				}
				if _, err := lv.Feed(sr); err != nil {
					t.Fatalf("checkpoint %d: feed: %v", k, err)
				}
				off := sr.Consumed()
				if off == 0 {
					continue
				}
				snap, _ := lv.Snapshot()
				cold, err := core.FromReader(bytes.NewReader(data[:off]))
				if err != nil {
					t.Fatalf("checkpoint %d: cold load of %d-byte prefix: %v", k, off, err)
				}
				assertSpilledEqualsBatch(t, fmt.Sprintf("checkpoint %d (offset %d)", k, off), snap, cold)
			}
			if err := sr.Done(); err != nil {
				t.Fatalf("stream did not end cleanly: %v", err)
			}
			snap, _ := lv.Snapshot()
			st, ok := snap.SpillStats()
			if !ok || st.Segments == 0 {
				t.Fatalf("spilling never engaged: stats %+v ok %v", st, ok)
			}
			if st.Err != "" {
				t.Fatalf("segment compaction failed: %s", st.Err)
			}
			if st.Pending != 0 {
				t.Fatalf("%d segments still pending under Sync", st.Pending)
			}
		})
	}
}

// TestLiveConcurrentAppendAndQuery is the -race stress test: one
// writer goroutine appends and publishes while reader goroutines
// continuously run timeline rendering, derived metrics and anomaly
// scans against the latest snapshot. Readers assert epoch coherence:
// epochs and span ends are monotone, and a snapshot never changes
// after publication.
func TestLiveConcurrentAppendAndQuery(t *testing.T) {
	data := simTraceBytes(t, 4, 3)
	g := &growingTrace{data: data}
	sr := trace.NewStreamReader(g)
	lv := core.NewLive()

	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		step := len(data)/64 + 1
		for g.limit < len(data) {
			g.limit += step
			if g.limit > len(data) {
				g.limit = len(data)
			}
			if _, err := lv.Feed(sr); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()

	type query func(tr *core.Trace)
	queries := []query{
		func(tr *core.Trace) {
			metrics.WorkersInState(tr, trace.StateIdle, 32)
			metrics.AverageTaskDuration(tr, 16, nil)
		},
		func(tr *core.Trace) {
			if tr.Span.Duration() > 0 {
				cfg := render.TimelineConfig{Width: 200, Height: 64, Mode: render.ModeState}
				if _, _, err := render.Timeline(tr, cfg); err != nil {
					t.Errorf("reader render: %v", err)
				}
			}
		},
		func(tr *core.Trace) {
			anomaly.Scan(tr, anomaly.Config{Windows: 16})
		},
	}
	for r := range queries {
		wg.Add(1)
		go func(run query) {
			defer wg.Done()
			var lastEpoch uint64
			var lastEnd int64
			for {
				done := writerDone.Load()
				tr, epoch := lv.Snapshot()
				if epoch < lastEpoch {
					t.Errorf("reader: epoch went backwards (%d after %d)", epoch, lastEpoch)
					return
				}
				if tr.Span.End < lastEnd {
					t.Errorf("reader: span end shrank (%d after %d)", tr.Span.End, lastEnd)
					return
				}
				lastEpoch, lastEnd = epoch, tr.Span.End
				run(tr)
				// A snapshot must be frozen: re-reading its span after
				// running queries (while the writer kept appending)
				// must give the same value.
				if tr.Span.End != lastEnd {
					t.Errorf("reader: snapshot span mutated after publication")
					return
				}
				if done {
					return
				}
			}
		}(queries[r])
	}
	wg.Wait()
	if err := sr.Done(); err != nil {
		t.Fatalf("stream did not end cleanly: %v", err)
	}

	// After the dust settles the final snapshot equals a cold load.
	snap, _ := lv.Snapshot()
	cold, err := core.FromReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	assertStreamEqualsBatch(t, "final", snap, cold)
}
