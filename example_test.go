package aftermath_test

import (
	"fmt"
	"log"
	"net/http"

	aftermath "github.com/openstream/aftermath"
)

// A Query is built fluently; its canonical serialized form is
// deterministic and order-independent, and doubles as the cache key
// of the serving layer. Equivalent queries — however they were built —
// canonicalize identically.
func ExampleNewQuery() {
	q := aftermath.NewQuery().
		Window(1000, 2000).
		Types("seidel_block").
		Intervals(200)
	fmt.Println(q.Canonical())

	// Type names deduplicate and sort: this differently-spelled query
	// is the same query, and shares the same cache entry.
	p := aftermath.NewQuery().
		Intervals(200).
		Types("seidel_block", "seidel_block").
		Window(1000, 2000)
	fmt.Println(p.Canonical() == q.Canonical())
	// Output:
	// t0=1000&t1=2000&types=seidel_block&n=200
	// true
}

// Every analysis entry point accepts any TraceSource — a batch trace
// (Static, epoch forever 0) or a LiveTrace (epoch advancing on every
// publish) — through the same query.
func ExampleStatic() {
	tr, _, err := aftermath.SimulateToTrace(mustSeidel(), aftermath.DefaultSimConfig(aftermath.SmallMachine(2, 2)))
	if err != nil {
		log.Fatal(err)
	}
	src := aftermath.Static(tr)
	q := aftermath.NewQuery().Types(aftermath.SeidelBlockType).Metric("avgdur").Intervals(100)
	series, epoch, err := aftermath.QuerySeries(src, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(series.Len(), epoch)
	// Output: 100 0
}

// A Hub serves many named traces — batch and live mixed — from one
// process, each under /t/<name>/, behind one shared response cache
// keyed by (trace, epoch, canonical query).
func ExampleNewHub() {
	tr, _, err := aftermath.SimulateToTrace(mustSeidel(), aftermath.DefaultSimConfig(aftermath.SmallMachine(2, 2)))
	if err != nil {
		log.Fatal(err)
	}
	live := aftermath.NewLiveTrace() // fed by a StreamReader elsewhere

	hub := aftermath.NewHub()
	hub.Add("seidel", aftermath.Static(tr))
	hub.Add("run-live", live)
	fmt.Println(hub.Names())

	// http.ListenAndServe(":8080", hub)
	_ = http.Handler(hub)
	// Output: [seidel run-live]
}

func mustSeidel() *aftermath.Program {
	prog, err := aftermath.BuildSeidel(aftermath.ScaledSeidelConfig(4, 2))
	if err != nil {
		log.Fatal(err)
	}
	return prog
}
