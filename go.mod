module github.com/openstream/aftermath

go 1.24
