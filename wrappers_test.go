package aftermath_test

import (
	"testing"

	aftermath "github.com/openstream/aftermath"
)

// TestFlatWrapperCompatibility: the flat convenience functions now
// delegate to the query layer; their behavior — including degenerate
// arguments, which historically hit the lower layers' own clamps —
// must be unchanged.
func TestFlatWrapperCompatibility(t *testing.T) {
	prog, err := aftermath.BuildSeidel(aftermath.ScaledSeidelConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := aftermath.SimulateToTrace(prog, aftermath.DefaultSimConfig(aftermath.SmallMachine(2, 2)))
	if err != nil {
		t.Fatal(err)
	}

	// bins < 1 clamps to one bin (as stats.NewHistogram always did),
	// not to the query layer's unset-default of 20.
	if h := aftermath.DurationHistogram(tr, nil, 0); len(h.Counts) != 1 {
		t.Errorf("DurationHistogram(tr, nil, 0) -> %d bins, want 1", len(h.Counts))
	}
	if h := aftermath.DurationHistogram(tr, nil, 5); len(h.Counts) != 5 {
		t.Errorf("DurationHistogram(tr, nil, 5) -> %d bins, want 5", len(h.Counts))
	}
	// intervals < 1 clamps to one interval (the metrics layer's
	// historical behavior), not to the unset-default of 200.
	if s := aftermath.IdleWorkers(tr, 0); s.Len() != 1 {
		t.Errorf("IdleWorkers(tr, 0) -> %d points, want 1", s.Len())
	}
	if s := aftermath.AverageTaskDuration(tr, -3, nil); s.Len() != 1 {
		t.Errorf("AverageTaskDuration(tr, -3, nil) -> %d points, want 1", s.Len())
	}
	// An explicit zero CommKinds counts nothing, exactly as the stats
	// layer always treated it.
	if m := aftermath.CommMatrixOf(tr, 0, tr.Span.Start, tr.Span.End); m.Total() != 0 {
		t.Errorf("CommMatrixOf(tr, 0, ...) counted %d bytes, want 0", m.Total())
	}
	if m := aftermath.CommMatrixOf(tr, aftermath.ReadsAndWrites, tr.Span.Start, tr.Span.End+1); m.Total() == 0 {
		t.Error("CommMatrixOf(tr, ReadsAndWrites, ...) counted nothing")
	}
	// An explicit empty window selects nothing, exactly as the stats
	// layer always treated it — no URL-level (0,0) convention leaks
	// into the programmatic API.
	if m := aftermath.CommMatrixOf(tr, aftermath.ReadsAndWrites, 0, 0); m.Total() != 0 {
		t.Errorf("CommMatrixOf(tr, kinds, 0, 0) counted %d bytes, want 0", m.Total())
	}
}
